//! The point-to-point searches: the exact-forward oracle and the
//! pruned bidirectional variant.
//!
//! Both produce labels **byte-identical** to the mapper's
//! (`pathalias_mapper::map_frozen_readonly`) on the destination's
//! predecessor chain — same cost, same visible-hop count, same path
//! state bits, same tie-broken predecessors. That is the whole game:
//! a `PATH src dst` answer must agree with the tree the daemon would
//! print from `src`, so this module replicates the mapper's relaxation
//! arithmetic exactly (adjust folding with the raw-cost source
//! exemption, gateway exemptions, the domain relay restriction, dead
//! host/link penalties, mixed-syntax state, and the
//! `(cost, hops, node)` key order with the `(pred, edge)` tie break).
//!
//! # How the bidirectional variant stays exact
//!
//! Classic bidirectional Dijkstra stitches a meeting point and stops
//! when `top_f + top_b >= mu`. That yields the optimal *cost*, but not
//! the mapper's exact label: the path state (hops, syntax bits,
//! tie-broken predecessors) lives only in the forward relaxation. So
//! the bidirectional search here keeps the forward side exact and uses
//! the backward side as a *pruner*:
//!
//! * A backward Dijkstra from `dst` over the reverse CSR computes
//!   `B(v)`, a **lower bound** on the remaining forward cost from `v`
//!   to `dst` (each penalty is included only when it provably applies
//!   to every forward path over that edge — gate and dead penalties
//!   are node/edge properties, the relay penalty applies whenever the
//!   tail is a domain since every forward label at a domain is
//!   tainted; the mixed penalty is state-dependent so it bounds to 0).
//! * `mu` is the cost of the best *concrete* path seen so far:
//!   whenever a forward-labelled node is backward-settled (or vice
//!   versa), the backward chain is re-costed under full forward
//!   semantics from that label. The destination's own tentative
//!   forward label also feeds `mu`.
//! * A forward candidate is dropped — no label write, no heap push —
//!   only when `cand_cost + B(v) > mu`, strictly.
//!
//! # Certification (why optimism is safe)
//!
//! The mapper is a label-*setting* heuristic over state-dependent
//! penalties (the mixed and relay penalties depend on how a path got
//! there), so it is not optimal: a real path can cost less than the
//! mapper's answer when its intermediate label is shadowed by a
//! lower-key label with different syntax state. That means a stitched
//! real-path `mu` may dip below the mapper's final cost `C`, and a
//! prune against it could cut the oracle's chain.
//!
//! The search therefore *certifies* each run. Any candidate that could
//! have influenced the oracle's final answer — created, improved, or
//! tie-rewritten a label ancestral to `dst`'s chain, in either the
//! oracle's run or this one — provably satisfies
//! `cand_cost + B(v) <= answer cost` (its true remaining cost down the
//! answer chain is at least `B(v)`, a global lower bound). So the loop
//! tracks `worst_prune`, the minimum `cand_cost + B(v)` ever pruned:
//!
//! * `worst_prune > answer cost` — no pruned candidate could have
//!   mattered; the labels (and their ties) are exactly the oracle's.
//!   This is the common case: on shadow-free queries `mu` converges to
//!   `C` itself and every prune exceeds it by construction.
//! * otherwise the run is uncertified and the caller falls back to the
//!   forward oracle — correct by construction, merely slower. This
//!   fires exactly when greedy-vs-optimal shadowing is close enough to
//!   the query to matter.
//!
//! The forward side still settles `dst` itself (that is what makes the
//! answer byte-identical); the speedup comes from the frontier the
//! pruning never materializes. The standard `top_f + top_b` bound
//! appears as the backward side's own stopping rule: once `top_b > mu`
//! the backward search can improve nothing and freezes, leaving its
//! last top as the floor bound for every node it never settled.

use pathalias_graph::{
    ChIndex, Cost, Dir, EdgeId, FrozenEdge, FrozenGraph, LinkFlags, NodeFlags, NodeId, ReverseGraph,
};
use pathalias_mapper::CostModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Path-state bits, identical to the mapper's packed run state.
pub(crate) const LABELLED: u8 = 1 << 0;
pub(crate) const HAS_LEFT: u8 = 1 << 1;
pub(crate) const HAS_RIGHT: u8 = 1 << 2;
pub(crate) const TAINTED: u8 = 1 << 3;
pub(crate) const VIA_BACK: u8 = 1 << 4;
pub(crate) const AMBIGUOUS: u8 = 1 << 5;
pub(crate) const MAPPED: u8 = 1 << 6;

/// Backward-side state bits.
const B_LABELLED: u8 = 1 << 0;
const B_SETTLED: u8 = 1 << 1;

/// The source's predecessor sentinel.
pub(crate) const NO_PRED: (u32, u32) = (u32::MAX, u32::MAX);

type Key = u128;

#[inline]
fn pack_key(cost: Cost, hops: u32, node: u32) -> Key {
    ((cost as u128) << 64) | ((hops as u128) << 32) | node as u128
}

/// Backward heap key: cost then node id, so extraction (and therefore
/// the backward tree) is deterministic.
#[inline]
fn pack_bkey(cost: Cost, node: u32) -> Key {
    ((cost as u128) << 32) | node as u128
}

/// Counters from one point-to-point search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Forward heap extractions that settled a node.
    pub settled: u64,
    /// Forward heap insertions.
    pub pushes: u64,
    /// Forward candidates dropped by the lower-bound pruning.
    pub pruned: u64,
    /// Backward (lower-bound) settles — reverse-CSR settles for the
    /// bidirectional search; downward-cone settles plus memoized
    /// `B*` evaluations for the CH tier.
    pub backward_settled: u64,
    /// The bidirectional run failed certification and the engine
    /// re-ran the forward oracle (see the module docs).
    pub fell_back: bool,
    /// The engine had a contraction hierarchy and ran the CH tier.
    pub tried_ch: bool,
    /// The CH tier's run certified — its answer was returned without
    /// falling back to the bidirectional search.
    pub ch_certified: bool,
}

/// Reusable search state: dense struct-of-arrays sized to the graph
/// once, then invalidated per query by bumping a generation stamp, so
/// repeated queries allocate nothing (the heaps keep their capacity
/// and are cheap to clear).
pub(crate) struct Scratch {
    generation: u32,
    n: usize,
    // Forward side (the mapper's SoA run state).
    f_key: Vec<Key>,
    f_pred: Vec<(u32, u32)>,
    f_state: Vec<u8>,
    f_stamp: Vec<u32>,
    f_heap: BinaryHeap<Reverse<Key>>,
    // Backward lower-bound side.
    b_dist: Vec<Cost>,
    b_pred: Vec<(u32, u32)>,
    b_state: Vec<u8>,
    b_stamp: Vec<u32>,
    b_heap: BinaryHeap<Reverse<Key>>,
    // CH tier: the destination's downward cone (exact CH-weight
    // distance to dst plus the (head, ref) step toward it) ...
    d_dist: Vec<Cost>,
    d_pred: Vec<(u32, u32)>,
    d_stamp: Vec<u32>,
    // ... the upward search from the source ...
    u_dist: Vec<Cost>,
    u_pred: Vec<(u32, u32)>,
    u_stamp: Vec<u32>,
    // ... and the memoized per-node lower bounds B*(v), with the
    // explicit DFS stack the lazy evaluation walks the up-edge DAG
    // with (kept here so repeated probes allocate nothing).
    bb_val: Vec<Cost>,
    bb_stamp: Vec<u32>,
    bb_stack: Vec<(u32, bool)>,
}

impl Scratch {
    pub(crate) fn new() -> Self {
        Scratch {
            generation: 0,
            n: 0,
            f_key: Vec::new(),
            f_pred: Vec::new(),
            f_state: Vec::new(),
            f_stamp: Vec::new(),
            f_heap: BinaryHeap::new(),
            b_dist: Vec::new(),
            b_pred: Vec::new(),
            b_state: Vec::new(),
            b_stamp: Vec::new(),
            b_heap: BinaryHeap::new(),
            d_dist: Vec::new(),
            d_pred: Vec::new(),
            d_stamp: Vec::new(),
            u_dist: Vec::new(),
            u_pred: Vec::new(),
            u_stamp: Vec::new(),
            bb_val: Vec::new(),
            bb_stamp: Vec::new(),
            bb_stack: Vec::new(),
        }
    }

    /// Starts a new query: size the arrays to the graph (first use
    /// only) and invalidate every slot by bumping the generation.
    fn begin(&mut self, n: usize) {
        if self.n < n {
            self.f_key.resize(n, 0);
            self.f_pred.resize(n, NO_PRED);
            self.f_state.resize(n, 0);
            self.f_stamp.resize(n, 0);
            self.b_dist.resize(n, 0);
            self.b_pred.resize(n, NO_PRED);
            self.b_state.resize(n, 0);
            self.b_stamp.resize(n, 0);
            self.d_dist.resize(n, 0);
            self.d_pred.resize(n, NO_PRED);
            self.d_stamp.resize(n, 0);
            self.u_dist.resize(n, 0);
            self.u_pred.resize(n, NO_PRED);
            self.u_stamp.resize(n, 0);
            self.bb_val.resize(n, 0);
            self.bb_stamp.resize(n, 0);
            self.n = n;
        }
        if self.generation == u32::MAX {
            // Generation wrap: one real clear every 2^32 queries.
            self.f_stamp.iter_mut().for_each(|s| *s = 0);
            self.b_stamp.iter_mut().for_each(|s| *s = 0);
            self.d_stamp.iter_mut().for_each(|s| *s = 0);
            self.u_stamp.iter_mut().for_each(|s| *s = 0);
            self.bb_stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
        self.f_heap.clear();
        self.b_heap.clear();
    }

    #[inline]
    fn f_live(&self, i: usize) -> bool {
        self.f_stamp[i] == self.generation
    }

    #[inline]
    fn f_state_of(&self, i: usize) -> u8 {
        if self.f_live(i) {
            self.f_state[i]
        } else {
            0
        }
    }

    #[inline]
    fn b_state_of(&self, i: usize) -> u8 {
        if self.b_stamp[i] == self.generation {
            self.b_state[i]
        } else {
            0
        }
    }

    /// The forward predecessor `(node, edge)` of slot `i` — only
    /// meaningful for nodes on the settled chain after a hit.
    #[inline]
    pub(crate) fn pred_of(&self, i: usize) -> (u32, u32) {
        self.f_pred[i]
    }
}

/// Everything the relaxation needs about the tail, mirroring the
/// mapper's `Tail`.
struct TailView {
    u: u32,
    cost: Cost,
    hops: u32,
    state: u8,
    pred_edge: Option<EdgeId>,
    is_domain: bool,
    use_raw: bool,
    dead_extra: Cost,
}

impl TailView {
    fn load(f: &FrozenGraph, model: &CostModel, src: NodeId, s: &Scratch, u: u32) -> TailView {
        let i = u as usize;
        let pred = s.f_pred[i];
        let id = NodeId::from_raw(u);
        let is_source = id == src;
        let uflags = f.flags(id);
        TailView {
            u,
            cost: (s.f_key[i] >> 64) as Cost,
            hops: (s.f_key[i] >> 32) as u32,
            state: s.f_state[i],
            pred_edge: (pred != NO_PRED).then(|| EdgeId::from_raw(pred.1)),
            is_domain: uflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && f.adjust(id) != 0,
            dead_extra: if !is_source && uflags.contains(NodeFlags::DEAD) {
                model.dead_penalty
            } else {
                0
            },
        }
    }
}

/// The mapper's gateway-exemption rule, verbatim.
#[inline]
fn gateway_exempt(tail_is_domain: bool, eflags: LinkFlags, v_is_domain: bool) -> bool {
    eflags.contains(LinkFlags::GATEWAY)
        || eflags.contains(LinkFlags::ALIAS)
        || eflags.contains(LinkFlags::NET_OUT)
        || (eflags.contains(LinkFlags::NET_IN) && v_is_domain && !tail_is_domain)
        || (eflags.is_explicit() && !tail_is_domain)
}

/// The operator side of the visible hop this edge appends, if any
/// (mapper's `visible_dir`).
#[inline]
fn visible_dir(f: &FrozenGraph, tail: &TailView, edge: FrozenEdge) -> Option<Dir> {
    let eflags = edge.flags();
    if eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_IN) {
        return None;
    }
    if eflags.contains(LinkFlags::NET_OUT) {
        let entering = tail
            .pred_edge
            .map(|pe| f.edge(pe).dir())
            .unwrap_or_else(|| edge.dir());
        return Some(entering);
    }
    Some(edge.dir())
}

/// One forward relaxation's arithmetic — the mapper's `relax` with the
/// label bookkeeping factored out, so the search loop and the
/// stitched-path evaluator cost a candidate identically.
#[inline]
fn eval_step(
    f: &FrozenGraph,
    model: &CostModel,
    tail: &TailView,
    e_raw: u32,
    edge: FrozenEdge,
) -> (Cost, u32, u8) {
    let v = edge.to();
    let vflags = f.flags(v);
    let v_is_domain = vflags.contains(NodeFlags::DOMAIN);
    let eflags = edge.flags();

    let base = if tail.use_raw {
        f.edge_raw_cost(EdgeId::from_raw(e_raw))
    } else {
        edge.cost()
    };

    let mut gate = 0;
    let mut relay = 0;
    let mut mixed = 0;
    let mut extra = tail.dead_extra;
    if eflags.contains(LinkFlags::DEAD) {
        extra += model.dead_link_penalty;
    }
    if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
        && !gateway_exempt(tail.is_domain, eflags, v_is_domain)
    {
        gate = model.gate_penalty;
    }
    if tail.state & TAINTED != 0 && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
        relay = model.relay_penalty;
    }

    let vis = visible_dir(f, tail, edge);
    let mut cand_state = (tail.state & !MAPPED) | LABELLED;
    if let Some(dir) = vis {
        match dir {
            Dir::Left => {
                if tail.state & HAS_RIGHT != 0 {
                    mixed = model.mixed_penalty;
                    cand_state |= AMBIGUOUS;
                }
                cand_state |= HAS_LEFT;
            }
            Dir::Right => {
                if model.strict_mixed && tail.state & HAS_LEFT != 0 {
                    mixed = model.mixed_penalty;
                }
                cand_state |= HAS_RIGHT;
            }
        }
    }
    if v_is_domain {
        cand_state |= TAINTED;
    }
    if eflags.contains(LinkFlags::BACK) {
        cand_state |= VIA_BACK;
    }

    let cand_cost = tail
        .cost
        .saturating_add(base)
        .saturating_add(gate)
        .saturating_add(relay)
        .saturating_add(mixed)
        .saturating_add(extra);
    let cand_hops = tail.hops + u32::from(vis.is_some());
    (cand_cost, cand_hops, cand_state)
}

/// The backward side's lower-bound weight for the forward edge
/// `u --e--> v`. Every component is included only when it applies to
/// *all* forward paths crossing the edge, so summing these along any
/// `u ⤳ dst` backward path under-approximates the true remaining
/// forward cost from any label at `u`.
#[inline]
fn lower_bound_weight(
    f: &FrozenGraph,
    model: &CostModel,
    src: NodeId,
    u: NodeId,
    e_raw: u32,
    edge: FrozenEdge,
) -> Cost {
    let uflags = f.flags(u);
    let u_is_domain = uflags.contains(NodeFlags::DOMAIN);
    let v = edge.to();
    let vflags = f.flags(v);
    let v_is_domain = vflags.contains(NodeFlags::DOMAIN);
    let eflags = edge.flags();

    // Exact: the raw-cost source exemption is a property of `u`.
    let base = if u == src && f.adjust(u) != 0 {
        f.edge_raw_cost(EdgeId::from_raw(e_raw))
    } else {
        edge.cost()
    };
    let mut w = base;
    // Exact: dead host/link penalties are node/edge properties.
    if u != src && uflags.contains(NodeFlags::DEAD) {
        w = w.saturating_add(model.dead_penalty);
    }
    if eflags.contains(LinkFlags::DEAD) {
        w = w.saturating_add(model.dead_link_penalty);
    }
    // Exact: the exemption rule only reads node/edge properties.
    if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
        && !gateway_exempt(u_is_domain, eflags, v_is_domain)
    {
        w = w.saturating_add(model.gate_penalty);
    }
    // Every forward label at a domain node is tainted (the source
    // starts tainted if it is a domain; reaching a domain taints), so
    // the relay penalty is exact when `u` is a domain — and only a
    // lower bound (0) otherwise. The mixed penalty is path-state
    // dependent, so it bounds to 0.
    if u_is_domain && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
        w = w.saturating_add(model.relay_penalty);
    }
    w
}

/// The destination's settled label.
pub(crate) struct SearchHit {
    pub cost: Cost,
    pub hops: u32,
    pub state: u8,
}

/// Outcome of a point-to-point search.
pub(crate) struct SearchOutcome {
    /// The destination's label, if reachable.
    pub hit: Option<SearchHit>,
    /// Whether the result is provably identical to the forward
    /// oracle's (always true for the oracle itself). An uncertified
    /// outcome must be discarded and the oracle re-run.
    pub certified: bool,
    pub stats: SearchStats,
}

/// Runs the search from `src` until `dst` is settled (or proven
/// unreachable). With `reverse` the backward pruner runs; without it
/// this is the plain forward oracle. On a hit the destination's
/// predecessor chain is left in `scratch` for the caller to walk.
pub(crate) fn search(
    f: &FrozenGraph,
    reverse: Option<&ReverseGraph>,
    model: &CostModel,
    src: NodeId,
    dst: NodeId,
    scratch: &mut Scratch,
) -> SearchOutcome {
    let n = f.node_count();
    scratch.begin(n);
    let gen = scratch.generation;
    let mut stats = SearchStats::default();

    // Forward init: the mapper's source label.
    let si = src.index();
    scratch.f_stamp[si] = gen;
    scratch.f_key[si] = pack_key(0, 0, src.raw());
    scratch.f_pred[si] = NO_PRED;
    scratch.f_state[si] = LABELLED | if f.is_domain(src) { TAINTED } else { 0 };
    scratch.f_heap.push(Reverse(pack_key(0, 0, src.raw())));
    stats.pushes += 1;

    // Backward init.
    let bidi = reverse.is_some();
    if bidi {
        let di = dst.index();
        scratch.b_stamp[di] = gen;
        scratch.b_dist[di] = 0;
        scratch.b_pred[di] = NO_PRED;
        scratch.b_state[di] = B_LABELLED;
        scratch.b_heap.push(Reverse(pack_bkey(0, dst.raw())));
    }
    // The best concrete path cost seen so far (stitched chains and the
    // destination's own tentative label). Pruning against it is
    // optimistic — the certification below is what makes it safe.
    let mut mu = Cost::MAX;
    // The smallest `cand_cost + B(v)` ever pruned; the run is
    // certified exact iff the answer beats it strictly (module docs).
    let mut worst_prune = Cost::MAX;
    // Backward stopping state: once the backward top exceeds `mu` the
    // search freezes and its last top bounds every unsettled node;
    // once its heap drains, unsettled nodes cannot reach `dst` at all.
    let mut b_active = bidi;
    let mut b_floor: Cost = 0;
    let mut b_exhausted = false;

    loop {
        let Some(&Reverse(fkey)) = scratch.f_heap.peek() else {
            // Forward frontier drained: dst unreached. Only certain if
            // no pruned candidate could have led anywhere (every prune
            // was of a provably dst-unreachable head).
            return SearchOutcome {
                hit: None,
                certified: worst_prune == Cost::MAX,
                stats,
            };
        };
        let f_top_cost = (fkey >> 64) as Cost;

        // Advance the backward pruner while it is the cheaper side.
        while b_active {
            let Some(&Reverse(bkey)) = scratch.b_heap.peek() else {
                b_active = false;
                b_exhausted = true;
                break;
            };
            let b_cost = (bkey >> 32) as Cost;
            if b_cost > mu.saturating_sub(f_top_cost) {
                // The standard `top_f + top_b >= mu` termination
                // bound: every forward candidate from here on costs at
                // least `top_f`, so once the backward floor alone
                // pushes such a candidate past `mu`, settling more
                // backward nodes can only reprove prunes the floor
                // already delivers. Freezing here (rather than at
                // `top_b > mu`) is what keeps the backward side from
                // exploring `dst`'s whole `mu`-ball under its
                // underestimated weights.
                b_active = false;
                b_floor = b_cost;
                break;
            }
            if b_cost > f_top_cost {
                break; // forward's turn
            }
            scratch.b_heap.pop();
            let v = bkey as u32 as usize;
            if scratch.b_state[v] & B_SETTLED != 0 {
                continue; // stale lazy-deletion entry
            }
            scratch.b_state[v] |= B_SETTLED;
            stats.backward_settled += 1;
            // A forward-labelled, backward-settled node stitches a
            // concrete path: re-cost the backward chain under full
            // forward semantics to tighten `mu`.
            if scratch.f_state_of(v) & LABELLED != 0 {
                let lb = ((scratch.f_key[v] >> 64) as Cost).saturating_add(scratch.b_dist[v]);
                if lb < mu {
                    mu = mu.min(stitch(f, model, src, dst, scratch, v as u32));
                }
            }
            let rev = reverse.expect("backward side requires the reverse CSR");
            for (u, e) in rev.in_edges(NodeId::from_raw(v as u32)) {
                let edge = f.edge(e);
                let w = lower_bound_weight(f, model, src, u, e.raw(), edge);
                let cand = scratch.b_dist[v].saturating_add(w);
                let ui = u.index();
                let known = scratch.b_stamp[ui] == gen && scratch.b_state[ui] & B_LABELLED != 0;
                if known && scratch.b_state[ui] & B_SETTLED != 0 {
                    continue;
                }
                if !known || cand < scratch.b_dist[ui] {
                    scratch.b_stamp[ui] = gen;
                    scratch.b_dist[ui] = cand;
                    scratch.b_pred[ui] = (v as u32, e.raw());
                    scratch.b_state[ui] = B_LABELLED;
                    scratch.b_heap.push(Reverse(pack_bkey(cand, u.raw())));
                }
            }
        }

        // Forward extraction (the oracle's loop, verbatim).
        let Some(Reverse(key)) = scratch.f_heap.pop() else {
            return SearchOutcome {
                hit: None,
                certified: worst_prune == Cost::MAX,
                stats,
            };
        };
        let u_raw = key as u32;
        let ui = u_raw as usize;
        if scratch.f_state[ui] & MAPPED != 0 {
            continue; // superseded by a later improvement
        }
        scratch.f_state[ui] |= MAPPED;
        stats.settled += 1;
        if u_raw == dst.raw() {
            // Settled. Certified iff no pruned candidate could have
            // produced, improved, or tie-rewritten any label on the
            // answer's causal chain.
            let cost = (scratch.f_key[ui] >> 64) as Cost;
            return SearchOutcome {
                hit: Some(SearchHit {
                    cost,
                    hops: (scratch.f_key[ui] >> 32) as u32,
                    state: scratch.f_state[ui],
                }),
                certified: worst_prune > cost,
                stats,
            };
        }
        if bidi && scratch.b_state_of(ui) & B_SETTLED != 0 {
            let lb = ((scratch.f_key[ui] >> 64) as Cost).saturating_add(scratch.b_dist[ui]);
            if lb < mu {
                mu = mu.min(stitch(f, model, src, dst, scratch, u_raw));
            }
        }

        // Node-level prune: every candidate out of `u` costs at least
        // `u`'s cost plus a lower-bound edge weight, and `B(u)` is at
        // most that weight plus the head's own bound — so when
        // `cost(u) + B(u)` already exceeds `mu`, each outgoing
        // candidate would be pruned individually below; skip the whole
        // expansion. The recorded `worst_prune` value under-approximates
        // every skipped candidate's `cand + B(v)`, so certification
        // stays conservative (it can only fall back more, never
        // mis-certify).
        if bidi {
            let b_of_u = if scratch.b_state_of(ui) & B_SETTLED != 0 {
                scratch.b_dist[ui]
            } else if b_exhausted {
                Cost::MAX
            } else if b_active {
                scratch
                    .b_heap
                    .peek()
                    .map_or(Cost::MAX, |&Reverse(k)| (k >> 32) as Cost)
            } else {
                b_floor
            };
            let through = ((scratch.f_key[ui] >> 64) as Cost).saturating_add(b_of_u);
            if through > mu || (b_of_u == Cost::MAX && mu == Cost::MAX && b_exhausted) {
                worst_prune = worst_prune.min(through);
                stats.pruned += 1;
                continue;
            }
        }

        let tail = TailView::load(f, model, src, scratch, u_raw);
        let (base_edge, row) = f.edge_slice(NodeId::from_raw(u_raw));
        for (i, &edge) in row.iter().enumerate() {
            let e_raw = base_edge + i as u32;
            let v = edge.to();
            let vi = v.index();
            let vstate = scratch.f_state_of(vi);
            if vstate & MAPPED != 0 {
                continue;
            }
            let (cand_cost, cand_hops, cand_state) = eval_step(f, model, &tail, e_raw, edge);

            // The pruning rule. `B(v)`: exact once backward-settled;
            // otherwise the backward top (everything unsettled costs
            // at least that), the frozen floor, or — backward heap
            // drained — unreachable-from-dst, prune unconditionally.
            if bidi {
                let b_of_v = if scratch.b_state_of(vi) & B_SETTLED != 0 {
                    scratch.b_dist[vi]
                } else if b_exhausted {
                    Cost::MAX
                } else if b_active {
                    scratch
                        .b_heap
                        .peek()
                        .map_or(Cost::MAX, |&Reverse(k)| (k >> 32) as Cost)
                } else {
                    b_floor
                };
                let through = cand_cost.saturating_add(b_of_v);
                if through > mu || (b_of_v == Cost::MAX && mu == Cost::MAX && b_exhausted) {
                    worst_prune = worst_prune.min(through);
                    stats.pruned += 1;
                    continue;
                }
                if v == dst {
                    // The destination's own tentative label is a
                    // concrete path cost — a sound `mu` contribution.
                    mu = mu.min(cand_cost);
                }
            }

            let cand_key = pack_key(cand_cost, cand_hops, v.raw());
            let cand_pred = (u_raw, e_raw);
            if vstate & LABELLED == 0 {
                scratch.f_stamp[vi] = gen;
                scratch.f_key[vi] = cand_key;
                scratch.f_pred[vi] = cand_pred;
                scratch.f_state[vi] = cand_state;
                scratch.f_heap.push(Reverse(cand_key));
                stats.pushes += 1;
            } else {
                let old = scratch.f_key[vi];
                if cand_key < old {
                    scratch.f_key[vi] = cand_key;
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                    scratch.f_heap.push(Reverse(cand_key));
                    stats.pushes += 1;
                } else if cand_key == old && cand_pred < scratch.f_pred[vi] {
                    // The mapper's deterministic tie break.
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                }
            }
        }
    }
}

/// Re-costs the backward predecessor chain from `x` to `dst` under
/// full forward semantics, starting from `x`'s forward label. The
/// result is the cost of a concrete `src ⤳ x ⤳ dst` path — a valid
/// upper bound by construction.
fn stitch(
    f: &FrozenGraph,
    model: &CostModel,
    src: NodeId,
    dst: NodeId,
    scratch: &Scratch,
    x: u32,
) -> Cost {
    let mut tail = TailView::load(f, model, src, scratch, x);
    let mut guard = 0usize;
    while tail.u != dst.raw() {
        let (_, e_raw) = scratch.b_pred[tail.u as usize];
        debug_assert_ne!(e_raw, u32::MAX, "backward chain must reach dst");
        let edge = f.edge(EdgeId::from_raw(e_raw));
        let (cost, hops, state) = eval_step(f, model, &tail, e_raw, edge);
        let v = edge.to();
        let vflags = f.flags(v);
        let is_source = v == src;
        tail = TailView {
            u: v.raw(),
            cost,
            hops,
            state,
            pred_edge: Some(EdgeId::from_raw(e_raw)),
            is_domain: vflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && f.adjust(v) != 0,
            dead_extra: if !is_source && vflags.contains(NodeFlags::DEAD) {
                model.dead_penalty
            } else {
                0
            },
        };
        guard += 1;
        debug_assert!(guard <= f.node_count(), "backward chain cycled");
        if guard > f.node_count() {
            return Cost::MAX;
        }
    }
    tail.cost
}

/// The universal lower-bound weight vector the contraction hierarchy
/// is built over: one entry per frozen edge, independent of the query
/// source (unlike the private `lower_bound_weight`, which may charge the exact
/// raw-cost and dead-host terms because it knows `src`). Every
/// component is included only when it applies to *every* forward
/// relaxation over the edge, from any label at any source:
///
/// * the base cost is the folded cost capped by the raw sidecar cost —
///   whichever of the two the mapper charges (folded normally, raw at
///   an adjusted source), the minimum under-approximates it;
/// * the dead-*link* penalty (an edge property) is exact, but the
///   dead-*host* penalty is omitted: its source-tail exemption makes
///   it query-dependent;
/// * the gate penalty is exact — the exemption rule reads only
///   node/edge properties;
/// * the relay penalty applies when the tail is a domain (every
///   forward label at a domain is tainted); the mixed penalty is
///   path-state dependent and bounds to zero.
///
/// Summing these along any path under-approximates what the mapper
/// charges for it, so hierarchy distances over this metric are sound
/// pruning bounds for the certified search.
pub fn ch_weights(f: &FrozenGraph, model: &CostModel) -> Vec<Cost> {
    let mut w = vec![0; f.edge_count()];
    for u in f.node_ids() {
        let u_is_domain = f.is_domain(u);
        let (base_edge, row) = f.edge_slice(u);
        for (i, &edge) in row.iter().enumerate() {
            let e_raw = base_edge + i as u32;
            let vflags = f.flags(edge.to());
            let eflags = edge.flags();
            let mut c = edge.cost().min(f.edge_raw_cost(EdgeId::from_raw(e_raw)));
            if eflags.contains(LinkFlags::DEAD) {
                c = c.saturating_add(model.dead_link_penalty);
            }
            if vflags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
                && !gateway_exempt(u_is_domain, eflags, vflags.contains(NodeFlags::DOMAIN))
            {
                c = c.saturating_add(model.gate_penalty);
            }
            if u_is_domain && !eflags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
                c = c.saturating_add(model.relay_penalty);
            }
            w[e_raw as usize] = c;
        }
    }
    w
}

/// Re-costs an explicit forward edge chain starting at `src` under
/// full forward semantics — the unpacked CH meeting path becomes a
/// concrete upper bound this way.
fn cost_path(f: &FrozenGraph, model: &CostModel, src: NodeId, edges: &[EdgeId]) -> Cost {
    let mut tail = TailView {
        u: src.raw(),
        cost: 0,
        hops: 0,
        state: LABELLED | if f.is_domain(src) { TAINTED } else { 0 },
        pred_edge: None,
        is_domain: f.is_domain(src),
        use_raw: f.adjust(src) != 0,
        dead_extra: 0,
    };
    for &e in edges {
        let edge = f.edge(e);
        let (cost, hops, state) = eval_step(f, model, &tail, e.raw(), edge);
        let v = edge.to();
        let vflags = f.flags(v);
        let is_source = v == src;
        tail = TailView {
            u: v.raw(),
            cost,
            hops,
            state,
            pred_edge: Some(e),
            is_domain: vflags.contains(NodeFlags::DOMAIN),
            use_raw: is_source && f.adjust(v) != 0,
            dead_extra: if !is_source && vflags.contains(NodeFlags::DEAD) {
                model.dead_penalty
            } else {
                0
            },
        };
    }
    tail.cost
}

/// The CH pruning oracle: `B*(v)`, the *exact* hierarchy distance
/// `v → dst` over the CH weights — a lower bound on the remaining
/// forward cost from any label at `v`. `Cost::MAX` means the hierarchy
/// sees no `v → dst` path at all.
///
/// Up edges strictly ascend rank, so the upward half is a DAG and the
/// distance obeys an exact recurrence with no search at all:
///
/// ```text
/// B*(v) = min( D(v),  min over up edges v → w:  weight + B*(w) )
/// ```
///
/// `D` is phase 1's exhaustive downward cone (every way of descending
/// into `dst`), and the up-edge minimization covers every way of first
/// climbing — together every up-then-down path, which by the builder's
/// witness guarantee realizes the true hierarchy distance. Memoized
/// per query and evaluated lazily (post-order DFS over the DAG), each
/// node costs amortized `O(up-degree)` across the whole forward
/// search — the entire point of the hierarchy tier's speed.
fn bound_to_dst(ch: &ChIndex, scratch: &mut Scratch, stats: &mut SearchStats, v: u32) -> Cost {
    let gen = scratch.generation;
    if scratch.bb_stamp[v as usize] == gen {
        return scratch.bb_val[v as usize];
    }
    let mut stack = std::mem::take(&mut scratch.bb_stack);
    stack.clear();
    stack.push((v, false));
    while let Some((x, children_done)) = stack.pop() {
        let xi = x as usize;
        if scratch.bb_stamp[xi] == gen {
            continue; // memoized by an earlier probe or a DAG diamond
        }
        if children_done {
            // Every up-successor is memoized now; fold the recurrence.
            let mut best = if scratch.d_stamp[xi] == gen {
                scratch.d_dist[xi]
            } else {
                Cost::MAX
            };
            for e in ch.up_edges(NodeId::from_raw(x)) {
                debug_assert_eq!(scratch.bb_stamp[e.node.index()], gen);
                best = best.min(e.weight.saturating_add(scratch.bb_val[e.node.index()]));
            }
            scratch.bb_stamp[xi] = gen;
            scratch.bb_val[xi] = best;
            stats.backward_settled += 1;
        } else {
            stack.push((x, true));
            for e in ch.up_edges(NodeId::from_raw(x)) {
                if scratch.bb_stamp[e.node.index()] != gen {
                    stack.push((e.node.raw(), false));
                }
            }
        }
    }
    scratch.bb_stack = stack;
    scratch.bb_val[v as usize]
}

/// The CH-assisted point-to-point search: same contract as [`search`],
/// with the contraction hierarchy standing in for the reverse-CSR
/// backward side. Three phases:
///
/// 1. a full backward Dijkstra from `dst` over the transposed downward
///    half computes `D(x)`, the exact CH-weight distance from each
///    cone node down into `dst`;
/// 2. an upward Dijkstra from `src` finds the best meeting node; its
///    path is unpacked to concrete forward edges and re-costed under
///    full forward semantics — a real path whose true cost seeds `mu`.
///    No meeting ⇒ return uncertified (never conclude `NoRoute` from
///    the hierarchy alone — the engine falls back);
/// 3. the exact forward label-setting loop (the oracle's, verbatim)
///    runs pruned by the memoized per-node bound `B*(v)` and certifies
///    against `worst_prune` exactly as the bidirectional search does.
///
/// The answer labels come from phase 3's mapper-identical relaxation,
/// so a certified outcome is byte-identical to the oracle's — the
/// hierarchy only decides what *not* to explore.
pub(crate) fn search_ch(
    f: &FrozenGraph,
    ch: &ChIndex,
    model: &CostModel,
    src: NodeId,
    dst: NodeId,
    scratch: &mut Scratch,
) -> SearchOutcome {
    let n = f.node_count();
    scratch.begin(n);
    let gen = scratch.generation;
    let mut stats = SearchStats::default();

    // Phase 1: the destination's downward cone, to exhaustion — `D`
    // feeds both the meeting phase and every later B* probe.
    scratch.d_stamp[dst.index()] = gen;
    scratch.d_dist[dst.index()] = 0;
    scratch.d_pred[dst.index()] = NO_PRED;
    scratch.b_heap.push(Reverse(pack_bkey(0, dst.raw())));
    while let Some(Reverse(k)) = scratch.b_heap.pop() {
        let c = (k >> 32) as Cost;
        let v = k as u32 as usize;
        if c > scratch.d_dist[v] {
            continue;
        }
        stats.backward_settled += 1;
        for e in ch.down_into(NodeId::from_raw(v as u32)) {
            let x = e.node.index();
            let cand = c.saturating_add(e.weight);
            if scratch.d_stamp[x] != gen || cand < scratch.d_dist[x] {
                scratch.d_stamp[x] = gen;
                scratch.d_dist[x] = cand;
                scratch.d_pred[x] = (v as u32, e.edge);
                scratch.b_heap.push(Reverse(pack_bkey(cand, e.node.raw())));
            }
        }
    }

    // Phase 2: upward from `src`; stop once the heap floor cannot beat
    // the best meeting (every later settle only rises).
    let mut best_meet: Cost = Cost::MAX;
    let mut meet: Option<u32> = None;
    scratch.u_stamp[src.index()] = gen;
    scratch.u_dist[src.index()] = 0;
    scratch.u_pred[src.index()] = NO_PRED;
    scratch.b_heap.clear();
    scratch.b_heap.push(Reverse(pack_bkey(0, src.raw())));
    while let Some(Reverse(k)) = scratch.b_heap.pop() {
        let c = (k >> 32) as Cost;
        let x = k as u32 as usize;
        if c > scratch.u_dist[x] {
            continue;
        }
        if c >= best_meet {
            break;
        }
        stats.backward_settled += 1;
        if scratch.d_stamp[x] == gen {
            let through = c.saturating_add(scratch.d_dist[x]);
            if through < best_meet {
                best_meet = through;
                meet = Some(x as u32);
            }
        }
        for e in ch.up_edges(NodeId::from_raw(x as u32)) {
            let y = e.node.index();
            let cand = c.saturating_add(e.weight);
            if scratch.u_stamp[y] != gen || cand < scratch.u_dist[y] {
                scratch.u_stamp[y] = gen;
                scratch.u_dist[y] = cand;
                scratch.u_pred[y] = (x as u32, e.edge);
                scratch.b_heap.push(Reverse(pack_bkey(cand, e.node.raw())));
            }
        }
    }
    let Some(meet) = meet else {
        return SearchOutcome {
            hit: None,
            certified: false,
            stats,
        };
    };

    // Unpack the meeting path (both pred chains strictly descend rank,
    // so they terminate — the load-time validator proved the edge
    // directions) and re-cost it to seed `mu` with a real path's cost:
    // the CH-weight sum `best_meet` is only a lower bound.
    let mut refs: Vec<u32> = Vec::new();
    let mut x = meet;
    while x != src.raw() {
        let (p, r) = scratch.u_pred[x as usize];
        refs.push(r);
        x = p;
    }
    refs.reverse();
    let mut x = meet;
    while x != dst.raw() {
        let (h, r) = scratch.d_pred[x as usize];
        refs.push(r);
        x = h;
    }
    let mut edges: Vec<EdgeId> = Vec::new();
    for &r in &refs {
        if !ch.unpack_into(r, &mut edges) {
            return SearchOutcome {
                hit: None,
                certified: false,
                stats,
            };
        }
    }
    let mut mu = cost_path(f, model, src, &edges);

    // Phase 3: the exact forward search (the oracle's loop, verbatim),
    // pruned by B* and certified exactly as the bidirectional variant.
    let si = src.index();
    scratch.f_stamp[si] = gen;
    scratch.f_key[si] = pack_key(0, 0, src.raw());
    scratch.f_pred[si] = NO_PRED;
    scratch.f_state[si] = LABELLED | if f.is_domain(src) { TAINTED } else { 0 };
    scratch.f_heap.push(Reverse(pack_key(0, 0, src.raw())));
    stats.pushes += 1;
    let mut worst_prune = Cost::MAX;

    loop {
        let Some(Reverse(key)) = scratch.f_heap.pop() else {
            return SearchOutcome {
                hit: None,
                certified: worst_prune == Cost::MAX,
                stats,
            };
        };
        let u_raw = key as u32;
        let ui = u_raw as usize;
        if scratch.f_state[ui] & MAPPED != 0 {
            continue; // superseded by a later improvement
        }
        scratch.f_state[ui] |= MAPPED;
        stats.settled += 1;
        if u_raw == dst.raw() {
            let cost = (scratch.f_key[ui] >> 64) as Cost;
            return SearchOutcome {
                hit: Some(SearchHit {
                    cost,
                    hops: (scratch.f_key[ui] >> 32) as u32,
                    state: scratch.f_state[ui],
                }),
                certified: worst_prune > cost,
                stats,
            };
        }
        // Node-level prune, same rule as the bidirectional search.
        let b_of_u = bound_to_dst(ch, scratch, &mut stats, u_raw);
        let through = ((scratch.f_key[ui] >> 64) as Cost).saturating_add(b_of_u);
        if through > mu {
            worst_prune = worst_prune.min(through);
            stats.pruned += 1;
            continue;
        }

        let tail = TailView::load(f, model, src, scratch, u_raw);
        let (base_edge, row) = f.edge_slice(NodeId::from_raw(u_raw));
        for (i, &edge) in row.iter().enumerate() {
            let e_raw = base_edge + i as u32;
            let v = edge.to();
            let vi = v.index();
            let vstate = scratch.f_state_of(vi);
            if vstate & MAPPED != 0 {
                continue;
            }
            let (cand_cost, cand_hops, cand_state) = eval_step(f, model, &tail, e_raw, edge);
            let b_of_v = bound_to_dst(ch, scratch, &mut stats, v.raw());
            let through = cand_cost.saturating_add(b_of_v);
            if through > mu {
                worst_prune = worst_prune.min(through);
                stats.pruned += 1;
                continue;
            }
            if v == dst {
                // The destination's tentative label is a concrete
                // path cost — a sound `mu` contribution.
                mu = mu.min(cand_cost);
            }

            let cand_key = pack_key(cand_cost, cand_hops, v.raw());
            let cand_pred = (u_raw, e_raw);
            if vstate & LABELLED == 0 {
                scratch.f_stamp[vi] = gen;
                scratch.f_key[vi] = cand_key;
                scratch.f_pred[vi] = cand_pred;
                scratch.f_state[vi] = cand_state;
                scratch.f_heap.push(Reverse(cand_key));
                stats.pushes += 1;
            } else {
                let old = scratch.f_key[vi];
                if cand_key < old {
                    scratch.f_key[vi] = cand_key;
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                    scratch.f_heap.push(Reverse(cand_key));
                    stats.pushes += 1;
                } else if cand_key == old && cand_pred < scratch.f_pred[vi] {
                    // The mapper's deterministic tie break.
                    scratch.f_pred[vi] = cand_pred;
                    scratch.f_state[vi] = cand_state;
                }
            }
        }
    }
}
