//! Route-string formatting for a single path.
//!
//! The printer labels the whole shortest-path tree in one preorder
//! traversal (`pathalias_printer::compute_routes`); a point-to-point
//! answer only needs the label of one leaf, so this module walks the
//! single `src ⤳ dst` chain applying the *same* combination rules —
//! alias and network edges inherit the parent's route unchanged, a
//! network-exit edge reuses the operator the path entered the network
//! with, and a domain's successors get the domain name appended. The
//! result is byte-identical to the printer's route for `dst` in the
//! tree rooted at `src` (the parity tests assert exactly that).

use pathalias_graph::{Cost, EdgeId, FrozenGraph, LinkFlags, NodeId};

/// A fully resolved point-to-point answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAnswer {
    /// Total path cost under the engine's cost model — identical to the
    /// mapper's label for `dst` in the tree rooted at `src`.
    pub cost: Cost,
    /// Visible hops (alias and network-entry edges add none).
    pub hops: u32,
    /// The node chain, `src` first, `dst` last.
    pub nodes: Vec<NodeId>,
    /// The edge chain; `edges[i]` connects `nodes[i]` to `nodes[i + 1]`.
    pub edges: Vec<EdgeId>,
    /// The printable name of the destination (domain members get the
    /// domain name appended, e.g. `caip.rutgers.edu`).
    pub name: String,
    /// The route template with `%s` standing for the user part, e.g.
    /// `seismo!caip.rutgers.edu!%s`.
    pub route: String,
    /// The path passes through a domain (ARPANET relay taint).
    pub via_domain: bool,
    /// The path uses an invented back link.
    pub via_backlink: bool,
    /// The route mixes syntaxes ambiguously (`!` after `@`).
    pub ambiguous: bool,
}

/// Formats the route template and printable destination name for the
/// node/edge chain `nodes` / `edges` (as produced by a search), using
/// the printer's combination rules.
pub(crate) fn format_route(
    f: &FrozenGraph,
    nodes: &[NodeId],
    edges: &[EdgeId],
) -> (String, String) {
    debug_assert_eq!(nodes.len(), edges.len() + 1);
    let mut route = "%s".to_string();
    let mut name = f.name(nodes[0]).to_string();
    for (i, &edge) in edges.iter().enumerate() {
        let parent = nodes[i];
        let child = nodes[i + 1];
        let eflags = f.edge_flags(edge);

        // Domain-name synthesis: "the name of the domain is appended to
        // the name of its successor".
        let child_name = if f.is_domain(parent) {
            format!("{}{}", f.name(child), name)
        } else {
            f.name(child).to_string()
        };

        let child_route = if eflags.contains(LinkFlags::ALIAS) {
            // Aliases splice nothing: the predecessor's name is the one
            // on the wire.
            route.clone()
        } else if f.is_net(child) {
            // "The route to a network is identical to the route to its
            // parent."
            route.clone()
        } else {
            // "When traversing a network-to-member edge, the routing
            // character and direction are the ones encountered when
            // entering the network" — the parent's own entering edge,
            // which on this chain is simply the previous edge.
            let op = if eflags.contains(LinkFlags::NET_OUT) && i > 0 {
                f.edge_op(edges[i - 1])
            } else {
                f.edge_op(edge)
            };
            op.splice(&route, &child_name)
        };
        route = child_route;
        name = child_name;
    }
    (route, name)
}
