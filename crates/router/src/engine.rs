//! The [`PointToPoint`] engine: a frozen graph, its reverse CSR, and a
//! pool of reusable search state, answering `src → dst` queries.

use crate::route::{format_route, PathAnswer};
use crate::search::{
    ch_weights, search, search_ch, Scratch, SearchStats, AMBIGUOUS, NO_PRED, TAINTED, VIA_BACK,
};
use pathalias_graph::{ChIndex, Cost, EdgeId, FrozenGraph, NodeId, ReverseGraph};
use pathalias_mapper::CostModel;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a point-to-point query produced no route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The source name does not resolve to a node.
    UnknownSource(String),
    /// The destination name does not resolve to a node.
    UnknownDest(String),
    /// The source has been `delete`d (or is otherwise unmappable) —
    /// the same refusal the mapper gives for a deleted tree root.
    DeletedSource,
    /// No path exists from source to destination.
    NoRoute,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            RouteError::UnknownDest(name) => write!(f, "unknown destination `{name}`"),
            RouteError::DeletedSource => write!(f, "source has been deleted"),
            RouteError::NoRoute => write!(f, "no route"),
        }
    }
}

impl std::error::Error for RouteError {}

/// One entry of a `PATH * dst` answer: a node with a direct link to
/// the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaEntry {
    /// The neighboring node.
    pub node: NodeId,
    /// The cheapest direct edge from `node` to the destination (folded
    /// cost, as the mapper would charge a non-source tail).
    pub cost: Cost,
}

/// The point-to-point route engine.
///
/// Holds an [`Arc<FrozenGraph>`] plus the reverse CSR (built once, or
/// loaded from a PAGF snapshot's reverse section) and a pool of
/// generation-stamped search scratch, so concurrent queries allocate
/// nothing in the steady state. Cloning the engine is cheap — both
/// graphs are shared; the scratch pool is too (an `Arc`), so clones
/// also share warmed-up buffers.
#[derive(Clone)]
pub struct PointToPoint {
    graph: Arc<FrozenGraph>,
    reverse: Arc<ReverseGraph>,
    ch: Option<Arc<ChIndex>>,
    model: CostModel,
    scratch: Arc<Mutex<Vec<Scratch>>>,
}

impl fmt::Debug for PointToPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PointToPoint")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .finish_non_exhaustive()
    }
}

impl PointToPoint {
    /// Builds an engine over `graph`, constructing the reverse CSR
    /// (O(n + m) counting sort).
    pub fn new(graph: Arc<FrozenGraph>, model: CostModel) -> PointToPoint {
        let reverse = Arc::new(graph.reverse());
        PointToPoint::with_reverse(graph, reverse, model)
    }

    /// Builds an engine reusing an already-built (or snapshot-loaded)
    /// reverse CSR. The reverse index must be the transpose of `graph`
    /// — snapshot loading validates this; a mismatched pair is caught
    /// here in debug builds.
    pub fn with_reverse(
        graph: Arc<FrozenGraph>,
        reverse: Arc<ReverseGraph>,
        model: CostModel,
    ) -> PointToPoint {
        PointToPoint::with_sections(graph, reverse, None, model)
    }

    /// Builds an engine from snapshot sections: the reverse CSR plus,
    /// optionally, a contraction hierarchy the `PATH` tier tries
    /// first. The hierarchy is accepted only if it is structurally a
    /// hierarchy over `graph` *and* its edge weights match what
    /// [`ch_weights`] derives from `model` — on any mismatch (say, a
    /// snapshot frozen under different penalties) it is silently
    /// dropped and queries run bidirectional, merely slower.
    pub fn with_sections(
        graph: Arc<FrozenGraph>,
        reverse: Arc<ReverseGraph>,
        ch: Option<Arc<ChIndex>>,
        model: CostModel,
    ) -> PointToPoint {
        debug_assert!(reverse.validate_against(&graph));
        let ch = ch.filter(|ch| {
            ch.validate_against(&graph) && ch.weights_consistent(&ch_weights(&graph, &model))
        });
        PointToPoint {
            graph,
            reverse,
            ch,
            model,
            scratch: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Builds an engine with a freshly constructed hierarchy (reverse
    /// CSR transpose + contraction over the [`ch_weights`] metric) —
    /// what servers do when no snapshot section is available.
    pub fn with_fresh_hierarchy(graph: Arc<FrozenGraph>, model: CostModel) -> PointToPoint {
        let reverse = Arc::new(graph.reverse());
        let ch = Arc::new(ChIndex::build(&graph, &ch_weights(&graph, &model)));
        PointToPoint::with_sections(graph, reverse, Some(ch), model)
    }

    /// The graph this engine answers over.
    pub fn graph(&self) -> &Arc<FrozenGraph> {
        &self.graph
    }

    /// The reverse adjacency index.
    pub fn reverse(&self) -> &Arc<ReverseGraph> {
        &self.reverse
    }

    /// The contraction hierarchy, when the engine carries one.
    pub fn hierarchy(&self) -> Option<&Arc<ChIndex>> {
        self.ch.as_ref()
    }

    /// The cost model queries are answered under.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Resolves `src → dst` by name with the bidirectional search.
    pub fn route(&self, src: &str, dst: &str) -> Result<PathAnswer, RouteError> {
        let (s, d) = self.resolve(src, dst)?;
        self.route_ids(s, d)
    }

    /// Resolves `src → dst` by id with the bidirectional search.
    pub fn route_ids(&self, src: NodeId, dst: NodeId) -> Result<PathAnswer, RouteError> {
        self.run(src, dst, true).map(|(a, _)| a)
    }

    /// Resolves `src → dst` by id with the plain forward oracle
    /// (uni-directional Dijkstra, stopped at the destination). Same
    /// answer as [`route_ids`](Self::route_ids), fewer moving parts —
    /// the parity baseline and the benchmark's control.
    pub fn route_ids_unidirectional(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<PathAnswer, RouteError> {
        self.run(src, dst, false).map(|(a, _)| a)
    }

    /// [`route_ids`](Self::route_ids) plus the search counters
    /// (settled/pushed/pruned), for tests and diagnostics.
    pub fn route_ids_with_stats(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(PathAnswer, SearchStats), RouteError> {
        self.run(src, dst, true)
    }

    /// [`route`](Self::route) plus the search counters — the daemon
    /// uses the `tried_ch`/`ch_certified` bits to report the CH tier's
    /// certification rate.
    pub fn route_with_stats(
        &self,
        src: &str,
        dst: &str,
    ) -> Result<(PathAnswer, SearchStats), RouteError> {
        let (s, d) = self.resolve(src, dst)?;
        self.run(s, d, true)
    }

    /// Answers `PATH * dst`: every node with a direct edge to `dst`,
    /// one entry per neighbor (cheapest edge wins), sorted by node id.
    /// This is a straight read of the reverse CSR — no search runs.
    pub fn via(&self, dst: &str) -> Result<Vec<ViaEntry>, RouteError> {
        let d = self.dst_id(dst)?;
        let mut out: Vec<ViaEntry> = Vec::new();
        // Reverse rows are edge-id ascending, not grouped by tail, so
        // dedup via a sort at the end (rows are short).
        for (tail, e) in self.reverse.in_edges(d) {
            let cost = self.graph.edge_cost(e);
            match out.iter_mut().find(|v| v.node == tail) {
                Some(v) => v.cost = v.cost.min(cost),
                None => out.push(ViaEntry { node: tail, cost }),
            }
        }
        out.sort_by_key(|v| v.node);
        Ok(out)
    }

    fn resolve(&self, src: &str, dst: &str) -> Result<(NodeId, NodeId), RouteError> {
        let s = self
            .resolve_name(src)
            .ok_or_else(|| RouteError::UnknownSource(src.to_string()))?;
        let d = self.dst_id(dst)?;
        Ok((s, d))
    }

    fn dst_id(&self, dst: &str) -> Result<NodeId, RouteError> {
        self.resolve_name(dst)
            .ok_or_else(|| RouteError::UnknownDest(dst.to_string()))
    }

    /// Resolves a name to a node, accepting both literal node names
    /// and the domain-qualified names the printer emits.
    ///
    /// The route table keys domain members by their fully qualified
    /// name — `format_route` appends the enclosing domain chain, so a
    /// node `waterlooastro` inside `.yalerelay96` inside `.edu` prints
    /// (and is queried) as `waterlooastro.yalerelay96.edu`, and the
    /// nested domain itself prints as `.yalerelay96.edu`. None of
    /// those are node names, so after an exact `id_of` miss this peels
    /// domain components off the right end: each peeled suffix must
    /// name a domain node that is a member of the previously peeled
    /// (outer) one, and the surviving prefix must be a member of the
    /// innermost domain. The membership checks keep unrelated names
    /// that merely end in `.edu` from resolving.
    fn resolve_name(&self, name: &str) -> Option<NodeId> {
        if let Some(id) = self.graph.id_of(name) {
            return Some(id);
        }
        let mut rest = name;
        let mut enclosing: Option<NodeId> = None;
        loop {
            let i = rest.rfind('.')?;
            if i == 0 {
                return None;
            }
            let peeled = self.graph.id_of(&rest[i..])?;
            if !self.graph.is_domain(peeled) {
                return None;
            }
            if let Some(outer) = enclosing {
                if !self.member_of(outer, peeled) {
                    return None;
                }
            }
            enclosing = Some(peeled);
            rest = &rest[..i];
            if let Some(host) = self.graph.id_of(rest) {
                if self.member_of(peeled, host) {
                    return Some(host);
                }
            }
        }
    }

    /// Whether `domain` has a direct (membership) edge to `node`.
    fn member_of(&self, domain: NodeId, node: NodeId) -> bool {
        let (_, row) = self.graph.edge_slice(domain);
        row.iter().any(|e| e.to() == node)
    }

    fn run(
        &self,
        src: NodeId,
        dst: NodeId,
        bidirectional: bool,
    ) -> Result<(PathAnswer, SearchStats), RouteError> {
        if !self.graph.is_mappable(src) {
            return Err(RouteError::DeletedSource);
        }
        let mut scratch = {
            let mut pool = self.scratch.lock().expect("scratch pool poisoned");
            pool.pop().unwrap_or_else(Scratch::new)
        };
        let reverse = bidirectional.then_some(&*self.reverse);
        // Tier order: contraction hierarchy, bidirectional, oracle —
        // each certified tier answers outright; an uncertified run
        // discards its labels and drops to the next (slower, but
        // correct by construction) tier.
        let mut outcome = match &self.ch {
            Some(ch) if bidirectional => {
                let mut o = search_ch(&self.graph, ch, &self.model, src, dst, &mut scratch);
                o.stats.tried_ch = true;
                o.stats.ch_certified = o.certified;
                if !o.certified {
                    let ch_stats = o.stats;
                    o = search(&self.graph, reverse, &self.model, src, dst, &mut scratch);
                    o.stats.tried_ch = true;
                    o.stats.pruned += ch_stats.pruned;
                    o.stats.backward_settled += ch_stats.backward_settled;
                }
                o
            }
            _ => search(&self.graph, reverse, &self.model, src, dst, &mut scratch),
        };
        if !outcome.certified {
            // The pruned run could not prove it matches the oracle
            // (greedy-vs-optimal shadowing near the query — see the
            // search module docs). Re-run the plain forward oracle,
            // which is exact by construction.
            let stats = outcome.stats;
            outcome = search(&self.graph, None, &self.model, src, dst, &mut scratch);
            outcome.stats.pruned = stats.pruned;
            outcome.stats.backward_settled = stats.backward_settled;
            outcome.stats.tried_ch = stats.tried_ch;
            outcome.stats.fell_back = true;
        }
        let stats = outcome.stats;
        let answer = outcome.hit.map(|hit| {
            // Walk the predecessor chain back to the source.
            let mut nodes: Vec<NodeId> = vec![dst];
            let mut edges: Vec<EdgeId> = Vec::new();
            let mut cur = dst.raw();
            while cur != src.raw() {
                let (p, e) = scratch.pred_of(cur as usize);
                debug_assert_ne!((p, e), NO_PRED, "settled non-source node has a pred");
                edges.push(EdgeId::from_raw(e));
                nodes.push(NodeId::from_raw(p));
                cur = p;
            }
            nodes.reverse();
            edges.reverse();
            let (route, name) = format_route(&self.graph, &nodes, &edges);
            (
                PathAnswer {
                    cost: hit.cost,
                    hops: hit.hops,
                    nodes,
                    edges,
                    name,
                    route,
                    via_domain: hit.state & TAINTED != 0,
                    via_backlink: hit.state & VIA_BACK != 0,
                    ambiguous: hit.state & AMBIGUOUS != 0,
                },
                stats,
            )
        });
        self.scratch
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
        answer.ok_or(RouteError::NoRoute)
    }
}
