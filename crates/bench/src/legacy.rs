//! The seed's linked-list mapper and route traversal, kept verbatim as
//! the comparison baseline and correctness oracle.
//!
//! PR 3 rewrote the production mapper to traverse the frozen CSR
//! snapshot ([`pathalias_graph::FrozenGraph`]); the old implementation
//! — Dijkstra chasing `Node::first_link` / `Link::next` chains through
//! the pools, `adjust` re-applied on every relaxation, route traversal
//! reading the mutable graph — moved here, out of the production
//! crates, so that:
//!
//! * `benches/dijkstra.rs` can measure CSR against the genuine seed
//!   code path on the same maps (recorded in `BENCH_map.json`), and
//! * the freeze-parity property test can assert the new pipeline's
//!   rendered output is byte-identical to the seed's.
//!
//! Nothing in the serving or pipeline path calls this module.

use pathalias_graph::{Cost, Dir, Graph, Link, LinkFlags, LinkId, NodeFlags, NodeId, RouteOp};
use pathalias_mapper::heap::IndexedHeap;
use pathalias_mapper::MapOptions;
use pathalias_printer::{Route, RouteKind, RouteTable};
use std::collections::HashSet;

/// The seed's per-node label (pred holds a pool [`LinkId`], not a CSR
/// edge id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegacyLabel {
    /// Total path cost including heuristic penalties.
    pub cost: Cost,
    /// Visible hops.
    pub hops: u32,
    /// Predecessor node and pool link.
    pub pred: Option<(NodeId, LinkId)>,
    /// `!`-style hop seen.
    pub has_left: bool,
    /// `@`-style hop seen.
    pub has_right: bool,
    /// Path passed through a domain.
    pub tainted: bool,
    /// Path uses an invented back link.
    pub via_backlink: bool,
    /// Path splices `!` after `@`.
    pub ambiguous: bool,
}

/// The seed's shortest-path tree: labels over the mutable graph.
#[derive(Debug, Clone)]
pub struct LegacyTree {
    /// The mapping source.
    pub source: NodeId,
    labels: Vec<Option<LegacyLabel>>,
    /// Relaxations that touched a traced host (the baseline keeps the
    /// seed's per-relaxation trace lookups for timing fidelity).
    pub traced: u64,
}

impl LegacyTree {
    /// The label for `node`, if reached.
    pub fn label(&self, node: NodeId) -> Option<&LegacyLabel> {
        self.labels.get(node.index()).and_then(|l| l.as_ref())
    }

    /// The path cost to `node`, if reached.
    pub fn cost(&self, node: NodeId) -> Option<Cost> {
        self.label(node).map(|l| l.cost)
    }

    /// Whether `node` was reached.
    pub fn is_mapped(&self, node: NodeId) -> bool {
        self.label(node).is_some()
    }

    /// Number of reached nodes.
    pub fn mapped_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Mappable nodes without labels.
    pub fn unreachable(&self, g: &Graph) -> Vec<NodeId> {
        g.iter_nodes()
            .filter(|(id, n)| n.is_mappable() && self.label(*id).is_none())
            .map(|(id, _)| id)
            .collect()
    }

    /// Dense children lists sorted by node id.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut kids: Vec<Vec<NodeId>> = vec![Vec::new(); self.labels.len()];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(LegacyLabel {
                pred: Some((p, _)), ..
            }) = l
            {
                kids[p.index()].push(NodeId::from_raw(i as u32));
            }
        }
        for k in &mut kids {
            k.sort();
        }
        kids
    }
}

type Key = (Cost, u32, u32);

fn key_of(node: NodeId, l: &LegacyLabel) -> Key {
    (l.cost, l.hops, node.raw())
}

struct Run<'g> {
    g: &'g Graph,
    opts: &'g MapOptions,
    source: NodeId,
    labels: Vec<Option<LegacyLabel>>,
    mapped: Vec<bool>,
    trace_set: HashSet<NodeId>,
    traced: u64,
}

enum Relaxed {
    Improved(Key),
    NoKeyChange,
    Skipped,
}

impl<'g> Run<'g> {
    fn new(g: &'g Graph, source: NodeId, opts: &'g MapOptions) -> Run<'g> {
        let src = g.node_ref(source);
        assert!(src.is_mappable(), "legacy baseline maps live sources only");
        let n = g.node_count();
        let mut labels = vec![None; n];
        labels[source.index()] = Some(LegacyLabel {
            cost: 0,
            hops: 0,
            pred: None,
            has_left: false,
            has_right: false,
            tainted: src.is_domain(),
            via_backlink: false,
            ambiguous: false,
        });
        Run {
            g,
            opts,
            source,
            labels,
            mapped: vec![false; n],
            trace_set: opts.trace.iter().copied().collect(),
            traced: 0,
        }
    }

    fn gateway_exempt(&self, u: NodeId, link: &Link) -> bool {
        let u_node = self.g.node_ref(u);
        link.flags.contains(LinkFlags::GATEWAY)
            || link.flags.contains(LinkFlags::ALIAS)
            || link.flags.contains(LinkFlags::NET_OUT)
            || (link.flags.contains(LinkFlags::NET_IN)
                && self.g.node_ref(link.to).is_domain()
                && !u_node.is_domain())
            || (link.flags.is_explicit() && !u_node.is_domain())
    }

    fn visible_op(&self, u_label: &LegacyLabel, link: &Link) -> Option<RouteOp> {
        if link.flags.intersects(LinkFlags::ALIAS | LinkFlags::NET_IN) {
            return None;
        }
        if link.flags.contains(LinkFlags::NET_OUT) {
            let entering = u_label
                .pred
                .map(|(_, plid)| self.g.link_ref(plid).op)
                .unwrap_or(link.op);
            return Some(entering);
        }
        Some(link.op)
    }

    fn relax(&mut self, u: NodeId, u_label: LegacyLabel, lid: LinkId, link: &Link) -> Relaxed {
        let model = &self.opts.model;
        let v = link.to;
        let v_node = self.g.node_ref(v);
        if link.flags.contains(LinkFlags::DELETED)
            || !v_node.is_mappable()
            || (self.opts.exclude_domains && v_node.is_domain())
            || self.mapped[v.index()]
        {
            return Relaxed::Skipped;
        }

        let mut base = link.cost;
        let u_node = self.g.node_ref(u);
        if u != self.source && u_node.adjust != 0 {
            let biased = (base as i128) + (u_node.adjust as i128);
            base = biased.clamp(0, Cost::MAX as i128) as Cost;
        }

        let mut gate = 0;
        let mut relay = 0;
        let mut mixed = 0;
        let mut extra = 0;
        if link.flags.contains(LinkFlags::DEAD) {
            extra += model.dead_link_penalty;
        }
        if u != self.source && u_node.flags.contains(NodeFlags::DEAD) {
            extra += model.dead_penalty;
        }
        if v_node.is_gated() && !self.gateway_exempt(u, link) {
            gate = model.gate_penalty;
        }
        if u_label.tainted && !link.flags.intersects(LinkFlags::ALIAS | LinkFlags::NET_OUT) {
            relay = model.relay_penalty;
        }

        let vis = self.visible_op(&u_label, link);
        let mut has_left = u_label.has_left;
        let mut has_right = u_label.has_right;
        let mut hop_ambiguous = false;
        if let Some(op) = vis {
            match op.dir {
                Dir::Left => {
                    if u_label.has_right {
                        mixed = model.mixed_penalty;
                        hop_ambiguous = true;
                    }
                    has_left = true;
                }
                Dir::Right => {
                    if model.strict_mixed && u_label.has_left {
                        mixed = model.mixed_penalty;
                    }
                    has_right = true;
                }
            }
        }

        let cost = u_label
            .cost
            .saturating_add(base)
            .saturating_add(gate)
            .saturating_add(relay)
            .saturating_add(mixed)
            .saturating_add(extra);
        let hops = u_label.hops + u32::from(vis.is_some());
        let cand = LegacyLabel {
            cost,
            hops,
            pred: Some((u, lid)),
            has_left,
            has_right,
            tainted: u_label.tainted || v_node.is_domain(),
            via_backlink: u_label.via_backlink || link.flags.contains(LinkFlags::BACK),
            ambiguous: u_label.ambiguous || hop_ambiguous,
        };

        let slot = &mut self.labels[v.index()];
        let outcome = match slot {
            None => {
                *slot = Some(cand);
                Relaxed::Improved(key_of(v, &cand))
            }
            Some(old) => {
                if (cand.cost, cand.hops) < (old.cost, old.hops) {
                    *old = cand;
                    Relaxed::Improved(key_of(v, &cand))
                } else if (cand.cost, cand.hops) == (old.cost, old.hops) {
                    let old_pred = old.pred.map(|(p, l)| (p.raw(), l.raw()));
                    let new_pred = cand.pred.map(|(p, l)| (p.raw(), l.raw()));
                    if new_pred < old_pred {
                        *old = cand;
                    }
                    Relaxed::NoKeyChange
                } else {
                    Relaxed::NoKeyChange
                }
            }
        };
        // The seed probed the trace set on every relaxation; keep the
        // lookups so the baseline's timing stays honest.
        if self.trace_set.contains(&v) || self.trace_set.contains(&u) {
            self.traced += 1;
        }
        outcome
    }

    fn finish(self) -> LegacyTree {
        LegacyTree {
            source: self.source,
            labels: self.labels,
            traced: self.traced,
        }
    }
}

/// The seed's heap Dijkstra over the linked adjacency lists (no back
/// links).
pub fn map_linked_readonly(g: &Graph, source: NodeId, opts: &MapOptions) -> LegacyTree {
    let mut run = Run::new(g, source, opts);
    let mut heap: IndexedHeap<Key> = IndexedHeap::new(g.node_count());
    heap.push(
        source.raw(),
        key_of(source, run.labels[source.index()].as_ref().expect("source")),
    );
    while let Some((u_raw, _)) = heap.pop() {
        let u = NodeId::from_raw(u_raw);
        run.mapped[u.index()] = true;
        let u_label = run.labels[u.index()].expect("queued node has a label");
        for (lid, _) in run.g.links_from(u) {
            // Re-borrow the link each iteration, exactly as the seed
            // did to satisfy the borrow checker.
            let link = *run.g.link_ref(lid);
            if let Relaxed::Improved(key) = run.relax(u, u_label, lid, &link) {
                let v_raw = link.to.raw();
                if heap.contains(v_raw) {
                    heap.decrease(v_raw, key);
                } else {
                    heap.push(v_raw, key);
                }
            }
        }
    }
    run.finish()
}

/// The seed's full mapping: heap Dijkstra plus the back-link pass to
/// fixpoint, inventing reverse links *into the graph* (the mutation the
/// frozen pipeline abolished).
pub fn map_linked(g: &mut Graph, source: NodeId, opts: &MapOptions) -> LegacyTree {
    let mut rounds = 0u32;
    loop {
        let tree = map_linked_readonly(g, source, opts);
        if opts.no_backlinks {
            return tree;
        }
        let mut inventions: Vec<(NodeId, NodeId, Cost, RouteOp)> = Vec::new();
        for u in tree.unreachable(g) {
            if opts.exclude_domains && g.node_ref(u).is_domain() {
                continue;
            }
            for (_, l) in g.links_from(u) {
                if l.flags.contains(LinkFlags::DELETED) || l.flags.contains(LinkFlags::BACK) {
                    continue;
                }
                if tree.is_mapped(l.to) {
                    let cost = l.cost.saturating_add(opts.model.backlink_penalty);
                    inventions.push((l.to, u, cost, l.op));
                }
            }
        }
        if inventions.is_empty() {
            return tree;
        }
        for (from, to, cost, op) in inventions {
            let exists = g
                .links_from(from)
                .any(|(_, l)| l.to == to && l.flags.contains(LinkFlags::BACK));
            if !exists {
                g.add_raw_link(from, to, cost, op, LinkFlags::BACK);
            }
        }
        rounds += 1;
        assert!(
            (rounds as usize) <= g.node_count() + 1,
            "legacy back-link pass failed to converge"
        );
    }
}

/// The seed's preorder route traversal over the mutable graph.
pub fn legacy_routes(g: &Graph, tree: &LegacyTree) -> RouteTable {
    let children = tree.children();
    let mut entries: Vec<Route> = Vec::with_capacity(tree.mapped_count());
    let mut stack: Vec<(NodeId, String, String)> = vec![(
        tree.source,
        "%s".to_string(),
        g.name(tree.source).to_string(),
    )];

    while let Some((node, route, name)) = stack.pop() {
        let n = g.node_ref(node);
        let label = tree.label(node).expect("traversal follows labels");

        let kind = if n.flags.contains(NodeFlags::PRIVATE) {
            RouteKind::Private
        } else if n.is_domain() {
            let parent_is_domain = label
                .pred
                .map(|(p, _)| g.node_ref(p).is_domain())
                .unwrap_or(false);
            if parent_is_domain {
                RouteKind::SubDomain
            } else {
                RouteKind::TopDomain
            }
        } else if n.is_net() {
            RouteKind::Network
        } else if label
            .pred
            .map(|(_, l)| g.link_ref(l).flags.contains(LinkFlags::ALIAS))
            .unwrap_or(false)
        {
            RouteKind::Alias
        } else {
            RouteKind::Host
        };

        for &child in children[node.index()].iter().rev() {
            let (_, lid) = tree
                .label(child)
                .expect("child is labelled")
                .pred
                .expect("non-source labelled nodes have predecessors");
            let link = g.link_ref(lid);

            let child_name = if n.is_domain() {
                format!("{}{}", g.name(child), name)
            } else {
                g.name(child).to_string()
            };

            // Aliases splice nothing, and "the route to a network is
            // identical to the route to its parent".
            let child_route = if link.flags.contains(LinkFlags::ALIAS) || g.node_ref(child).is_net()
            {
                route.clone()
            } else {
                let op = if link.flags.contains(LinkFlags::NET_OUT) {
                    tree.label(node)
                        .and_then(|l| l.pred)
                        .map(|(_, entering)| g.link_ref(entering).op)
                        .unwrap_or(link.op)
                } else {
                    link.op
                };
                op.splice(&route, &child_name)
            };
            stack.push((child, child_route, child_name));
        }

        entries.push(Route {
            node,
            name,
            cost: label.cost,
            route,
            kind,
            via_domain: label.tainted,
            via_backlink: label.via_backlink,
            ambiguous: label.ambiguous,
        });
    }

    entries.sort_by_key(|r| r.node);
    RouteTable {
        source: tree.source,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_mapper::{map, map_readonly};
    use pathalias_parser::parse;
    use pathalias_printer::{render, PrintOptions};

    #[test]
    fn baseline_agrees_with_csr_on_a_small_map() {
        let text = "\
unc duke(500), phs(2000)
duke phs(300), @research(100)
leaf duke(25)
N = {unc, research}(40)
.edu = {caip}(0)
duke .edu(95)
adjust {duke(10)}
";
        let mut g = parse(text).unwrap();
        let src = g.try_node("unc").unwrap();
        let opts = MapOptions::default();
        let csr = map(&g, src, &opts).unwrap();
        let old = map_linked(&mut g, src, &opts);
        for id in g.node_ids() {
            assert_eq!(csr.cost(id), old.cost(id), "cost of {}", g.name(id));
        }
        let print_opts = PrintOptions {
            with_costs: true,
            ..PrintOptions::default()
        };
        let new_text = render(&pathalias_printer::compute_routes(&csr), &print_opts);
        let old_text = render(&legacy_routes(&g, &old), &print_opts);
        assert_eq!(new_text, old_text);
    }

    #[test]
    fn readonly_variant_matches_production_readonly() {
        let g = parse("a b(10)\nb c(7), @d(3)\nc a(1)\n").unwrap();
        let src = g.try_node("a").unwrap();
        let opts = MapOptions {
            no_backlinks: true,
            ..MapOptions::default()
        };
        let csr = map_readonly(&g, src, &opts).unwrap();
        let old = map_linked_readonly(&g, src, &opts);
        for id in g.node_ids() {
            assert_eq!(csr.cost(id), old.cost(id));
        }
    }
}
