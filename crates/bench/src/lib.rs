//! Shared fixtures for the benchmark and experiment harness.
//!
//! DESIGN.md §3 maps every table and figure in the paper to a bench
//! target; this crate holds the workload builders they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legacy;

use pathalias_graph::{Graph, NodeId, RouteOp};
use pathalias_mapgen::{generate, MapSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's worked-example map (OUTPUT section).
pub const PAPER_1981_MAP: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";

/// The PROBLEMS-section motown graph.
pub const MOTOWN_MAP: &str = "\
princeton caip(200), topaz(300)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
topaz motown(200)
";

/// Parses a small synthetic map and returns it with its home hub.
pub fn sparse_world(hosts: usize, seed: u64) -> (Graph, NodeId) {
    let map = generate(&MapSpec::small(hosts, seed));
    let g = map.parse().expect("generated maps parse");
    let home = g.try_node(&map.home).expect("home exists");
    (g, home)
}

/// Generates the concatenated text of a synthetic map (for scanner and
/// parser benchmarks).
pub fn map_text(hosts: usize, seed: u64) -> String {
    generate(&MapSpec::small(hosts, seed)).concatenated()
}

/// Paper-scale text (5,700 + 2,800 hosts).
pub fn paper_scale_text(seed: u64) -> String {
    generate(&MapSpec::usenet_1986(seed)).concatenated()
}

/// A purely random sparse digraph built directly (no parsing), for the
/// Dijkstra scaling experiment: `v` nodes, about `deg * v` edges.
pub fn random_sparse(v: usize, deg: f64, seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..v).map(|i| g.node(&format!("n{i}"))).collect();
    let e = (v as f64 * deg) as usize;
    for _ in 0..e {
        let a = rng.random_range(0..v);
        let b = rng.random_range(0..v);
        if a != b {
            g.add_raw_link(
                ids[a],
                ids[b],
                rng.random_range(1..10_000),
                RouteOp::UUCP,
                pathalias_graph::LinkFlags::empty(),
            );
        }
    }
    // A ring guarantees connectivity so both variants map everything.
    for i in 0..v {
        g.add_raw_link(
            ids[i],
            ids[(i + 1) % v],
            10_000,
            RouteOp::UUCP,
            pathalias_graph::LinkFlags::empty(),
        );
    }
    (g, ids[0])
}

/// An ARPANET-style network with `n` members: either the paper's
/// star representation (one net node, 2n edges) or the naive explicit
/// clique (n² − n edges). Returns the graph and the entry host.
pub fn clique_world(n: usize, star: bool) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let entry = g.node("gatewayhost");
    let members: Vec<NodeId> = (0..n).map(|i| g.node(&format!("m{i}"))).collect();
    if star {
        let net = g.node("BIGNET");
        let pairs: Vec<(NodeId, u64)> = members.iter().map(|&m| (m, 95)).collect();
        g.declare_network(net, &pairs, RouteOp::ARPA);
        g.declare_link(entry, net, 95, RouteOp::ARPA);
    } else {
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                if i != j {
                    g.add_raw_link(a, b, 95, RouteOp::ARPA, pathalias_graph::LinkFlags::empty());
                }
            }
        }
        g.declare_link(entry, members[0], 95, RouteOp::ARPA);
    }
    (g, entry)
}

/// Rebuilds a graph's structure into a fresh pooled [`Graph`] — the
/// arena-discipline counterpart of [`pathalias_graph::boxed::BoxedGraph`]
/// for the allocator experiment (same nodes, names and live links).
pub fn rebuild_pooled(src: &Graph) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = src.node_ids().map(|id| g.node(src.name(id))).collect();
    for from in src.node_ids() {
        for (_, l) in src.links_from(from) {
            if !l.flags.contains(pathalias_graph::LinkFlags::DELETED) {
                g.add_raw_link(ids[from.index()], ids[l.to.index()], l.cost, l.op, l.flags);
            }
        }
    }
    g
}

/// Deterministic host names for the hashing experiments (a mix of
/// real-ish and sequential names, like the UUCP map).
pub fn host_names(n: usize) -> Vec<String> {
    (0..n).map(pathalias_mapgen::HostNamer::name_at).collect()
}

/// A mapgen world written to disk plus one known link-cost edit that
/// the server's incremental reload path absorbs (verified during
/// construction). Shared by the `serve/reload-*` benches and
/// experiment E17: both need an edit that is guaranteed to take the
/// delta path so they measure repair, not the full-pipeline fallback.
pub struct ReloadWorld {
    /// Temp directory holding the map files.
    pub dir: std::path::PathBuf,
    /// The map files, in parse order.
    pub paths: Vec<std::path::PathBuf>,
    /// Pipeline options (home hub set).
    pub options: pathalias_core::Options,
    /// The home hub.
    pub home: String,
    file: usize,
    original: String,
    edited: String,
}

fn is_plain_cost_line(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty()
        && !t.starts_with('#')
        && !t.contains(['{', '}', '='])
        && t.contains('(')
        && t.ends_with(')')
        && t.as_bytes()[0].is_ascii_alphanumeric()
}

fn bump_first_cost(line: &str, delta: u64) -> Option<String> {
    let open = line.find('(')?;
    let close = line[open..].find(')')? + open;
    let expr = line[open + 1..close].trim();
    if expr.is_empty() {
        return None;
    }
    let bumped = match expr.parse::<u64>() {
        Ok(n) => format!("{}", n + delta),
        Err(_) => format!("{expr}+{delta}"),
    };
    Some(format!("{}({bumped}){}", &line[..open], &line[close + 1..]))
}

impl ReloadWorld {
    /// Generates `spec`, writes it to a temp dir, and hunts for a
    /// one-cost edit the delta reload path absorbs. Panics if no such
    /// edit exists — every mapgen world has plenty of plain host rows,
    /// so that would mean the delta path itself is broken.
    pub fn new(spec: &MapSpec, tag: &str) -> ReloadWorld {
        let map = generate(spec);
        let dir = std::env::temp_dir().join(format!(
            "pathalias-reload-world-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let paths: Vec<std::path::PathBuf> = map
            .files
            .iter()
            .map(|(name, text)| {
                let p = dir.join(name);
                std::fs::write(&p, text).expect("write map file");
                p
            })
            .collect();
        let options = pathalias_core::Options {
            local: Some(map.home.clone()),
            ..Default::default()
        };

        let mut world = ReloadWorld {
            dir,
            paths,
            options,
            home: map.home.clone(),
            file: 0,
            original: String::new(),
            edited: String::new(),
        };
        let (source, cache) = world.delta_source();
        source.load_serving_timed().expect("warm load");

        let mut tried = 0usize;
        for (i, path) in world.paths.iter().enumerate() {
            let text = std::fs::read_to_string(path).expect("read map file");
            for line in text.lines() {
                if !is_plain_cost_line(line) {
                    continue;
                }
                // The home hub's row invalidates most of the tree, so
                // editing it always falls back to the full pipeline —
                // at 1M hosts each such probe costs a full remap.
                if line.starts_with(&map.home) {
                    continue;
                }
                // High-degree rows (backbone and region hubs) parent
                // large subtrees, so a patch there blows the repair's
                // 25% dirty-cone budget and the probe pays two full
                // remaps for nothing. Hunt among leaf-ish rows.
                if line.matches(',').count() >= 8 {
                    continue;
                }
                let Some(edited_line) = bump_first_cost(line, 3) else {
                    continue;
                };
                let before = cache.delta_reloads();
                let edited = text.replacen(line, &edited_line, 1);
                std::fs::write(path, &edited).expect("write edit");
                let took_delta =
                    source.load_serving_timed().is_ok() && cache.delta_reloads() > before;
                if took_delta {
                    world.file = i;
                    world.original = text;
                    world.edited = edited;
                    // Leave the world in its original state (that
                    // reload is itself a one-line delta).
                    world.toggle(false);
                    source.load_serving_timed().expect("restore load");
                    return world;
                }
                // Roll the candidate back before trying the next one.
                std::fs::write(path, &text).expect("restore map file");
                source.load_serving_timed().expect("rollback load");
                tried += 1;
                if tried >= 200 {
                    panic!("no one-cost edit took the delta path in 200 tries");
                }
            }
        }
        panic!("no editable plain cost line found in the generated world");
    }

    /// Writes the edited (`true`) or original (`false`) variant of the
    /// chosen file.
    pub fn toggle(&self, edited: bool) {
        let text = if edited { &self.edited } else { &self.original };
        std::fs::write(&self.paths[self.file], text).expect("toggle map file");
    }

    /// A map source with validation disabled (so `reload-full`
    /// measures the remap itself, not the validation fan-out) plus its
    /// stage cache, for checking the delta counter.
    pub fn delta_source(&self) -> (pathalias_server::MapSource, pathalias_server::StageCache) {
        let cache = pathalias_server::StageCache::default();
        let source = pathalias_server::MapSource::Map {
            files: self.paths.clone(),
            options: self.options.clone(),
            validate_sources: 0,
            validate_threads: 1,
            cache: cache.clone(),
        };
        (source, cache)
    }
}

impl Drop for ReloadWorld {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (g, home) = sparse_world(120, 1);
        assert!(g.node_count() >= 120);
        assert_eq!(g.name(home), "uncvax");

        let (g, _) = random_sparse(100, 4.0, 2);
        assert!(g.link_count() >= 400);

        let (star, _) = clique_world(50, true);
        let (full, _) = clique_world(50, false);
        assert!(star.link_count() < 120);
        assert_eq!(full.link_count(), 50 * 49 + 1);

        assert_eq!(host_names(3).len(), 3);
        assert!(map_text(100, 3).contains("file {"));
    }

    #[test]
    fn reload_world_finds_a_delta_edit() {
        let world = ReloadWorld::new(&MapSpec::small(120, 5), "libtest");
        let (source, cache) = world.delta_source();
        source.load_serving_timed().unwrap();
        world.toggle(true);
        source.load_serving_timed().unwrap();
        assert_eq!(
            cache.delta_reloads(),
            1,
            "the recorded edit must repair in place"
        );
    }
}
