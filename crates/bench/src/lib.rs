//! Shared fixtures for the benchmark and experiment harness.
//!
//! DESIGN.md §3 maps every table and figure in the paper to a bench
//! target; this crate holds the workload builders they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legacy;

use pathalias_graph::{Graph, NodeId, RouteOp};
use pathalias_mapgen::{generate, MapSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's worked-example map (OUTPUT section).
pub const PAPER_1981_MAP: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";

/// The PROBLEMS-section motown graph.
pub const MOTOWN_MAP: &str = "\
princeton caip(200), topaz(300)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
topaz motown(200)
";

/// Parses a small synthetic map and returns it with its home hub.
pub fn sparse_world(hosts: usize, seed: u64) -> (Graph, NodeId) {
    let map = generate(&MapSpec::small(hosts, seed));
    let g = map.parse().expect("generated maps parse");
    let home = g.try_node(&map.home).expect("home exists");
    (g, home)
}

/// Generates the concatenated text of a synthetic map (for scanner and
/// parser benchmarks).
pub fn map_text(hosts: usize, seed: u64) -> String {
    generate(&MapSpec::small(hosts, seed)).concatenated()
}

/// Paper-scale text (5,700 + 2,800 hosts).
pub fn paper_scale_text(seed: u64) -> String {
    generate(&MapSpec::usenet_1986(seed)).concatenated()
}

/// A purely random sparse digraph built directly (no parsing), for the
/// Dijkstra scaling experiment: `v` nodes, about `deg * v` edges.
pub fn random_sparse(v: usize, deg: f64, seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..v).map(|i| g.node(&format!("n{i}"))).collect();
    let e = (v as f64 * deg) as usize;
    for _ in 0..e {
        let a = rng.random_range(0..v);
        let b = rng.random_range(0..v);
        if a != b {
            g.add_raw_link(
                ids[a],
                ids[b],
                rng.random_range(1..10_000),
                RouteOp::UUCP,
                pathalias_graph::LinkFlags::empty(),
            );
        }
    }
    // A ring guarantees connectivity so both variants map everything.
    for i in 0..v {
        g.add_raw_link(
            ids[i],
            ids[(i + 1) % v],
            10_000,
            RouteOp::UUCP,
            pathalias_graph::LinkFlags::empty(),
        );
    }
    (g, ids[0])
}

/// An ARPANET-style network with `n` members: either the paper's
/// star representation (one net node, 2n edges) or the naive explicit
/// clique (n² − n edges). Returns the graph and the entry host.
pub fn clique_world(n: usize, star: bool) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let entry = g.node("gatewayhost");
    let members: Vec<NodeId> = (0..n).map(|i| g.node(&format!("m{i}"))).collect();
    if star {
        let net = g.node("BIGNET");
        let pairs: Vec<(NodeId, u64)> = members.iter().map(|&m| (m, 95)).collect();
        g.declare_network(net, &pairs, RouteOp::ARPA);
        g.declare_link(entry, net, 95, RouteOp::ARPA);
    } else {
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                if i != j {
                    g.add_raw_link(a, b, 95, RouteOp::ARPA, pathalias_graph::LinkFlags::empty());
                }
            }
        }
        g.declare_link(entry, members[0], 95, RouteOp::ARPA);
    }
    (g, entry)
}

/// Rebuilds a graph's structure into a fresh pooled [`Graph`] — the
/// arena-discipline counterpart of [`pathalias_graph::boxed::BoxedGraph`]
/// for the allocator experiment (same nodes, names and live links).
pub fn rebuild_pooled(src: &Graph) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = src.node_ids().map(|id| g.node(src.name(id))).collect();
    for from in src.node_ids() {
        for (_, l) in src.links_from(from) {
            if !l.flags.contains(pathalias_graph::LinkFlags::DELETED) {
                g.add_raw_link(ids[from.index()], ids[l.to.index()], l.cost, l.op, l.flags);
            }
        }
    }
    g
}

/// Deterministic host names for the hashing experiments (a mix of
/// real-ish and sequential names, like the UUCP map).
pub fn host_names(n: usize) -> Vec<String> {
    (0..n).map(pathalias_mapgen::HostNamer::name_at).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (g, home) = sparse_world(120, 1);
        assert!(g.node_count() >= 120);
        assert_eq!(g.name(home), "uncvax");

        let (g, _) = random_sparse(100, 4.0, 2);
        assert!(g.link_count() >= 400);

        let (star, _) = clique_world(50, true);
        let (full, _) = clique_world(50, false);
        assert!(star.link_count() < 120);
        assert_eq!(full.link_count(), 50 * 49 + 1);

        assert_eq!(host_names(3).len(), 3);
        assert!(map_text(100, 3).contains("file {"));
    }
}
