//! The CI bench regression gate.
//!
//! Compares headline numbers from a fresh `cargo bench` run (the
//! stand-in criterion's `bench <name> <ns> ns/iter ...` lines)
//! against the checked-in baselines (`BENCH_map.json` /
//! `BENCH_serve.json`) and fails when a gated benchmark regressed
//! beyond the allowed percentage. Quick-mode CI runners are noisy, so
//! the default tolerance is deliberately wide (30%): this gate
//! catches "accidentally made resolve 5× slower", not 2% drift.
//!
//! ```text
//! bench_gate --baseline BENCH_serve.json --baseline BENCH_map.json \
//!            --results serve.txt --results dijkstra.txt \
//!            --gate serve/resolve-in-memory --gate dijkstra-large-map/csr \
//!            [--report serve/multi-map-batched/64] [--max-regress-pct 30]
//! ```
//!
//! `--report` names a benchmark to *show* without gating on it — the
//! on-ramp for new headlines: the number appears in every CI run (and
//! in the uploaded trend artifacts) while it accumulates enough
//! history to justify a baseline, but cannot fail the build, even
//! when it is missing from the output or has no baseline yet.
//!
//! The baselines are plain JSON written by hand alongside bench
//! updates; rather than grow a JSON dependency, the tiny subset used
//! here (`"name": "..."` / `"ns_per_iter": N` pairs, in order) is
//! extracted textually.

use std::collections::HashMap;
use std::process::ExitCode;

/// Extracts `(name, ns_per_iter)` pairs from a baseline JSON file.
///
/// The format is the repo's own `BENCH_*.json`: each result object
/// lists `"name"` before `"ns_per_iter"`. Anything else is ignored.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            pending = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("\"ns_per_iter\":") {
            let value = rest.trim().trim_end_matches(',');
            if let (Some(name), Ok(ns)) = (pending.take(), value.parse::<f64>()) {
                out.push((name, ns));
            }
        }
    }
    out
}

/// Extracts `(name, ns_per_iter)` pairs from stand-in criterion
/// output lines: `bench   <name>   <ns> ns/iter   (#iters N) ...`.
fn parse_results(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        if fields.next() != Some("bench") {
            continue;
        }
        let (Some(name), Some(ns), Some("ns/iter")) = (fields.next(), fields.next(), fields.next())
        else {
            continue;
        };
        if let Ok(ns) = ns.parse::<f64>() {
            out.push((name.to_string(), ns));
        }
    }
    out
}

struct Args {
    baselines: Vec<String>,
    results: Vec<String>,
    gates: Vec<String>,
    reports: Vec<String>,
    max_regress_pct: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        baselines: Vec::new(),
        results: Vec::new(),
        gates: Vec::new(),
        reports: Vec::new(),
        max_regress_pct: 30.0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => args.baselines.push(value("--baseline")?),
            "--results" => args.results.push(value("--results")?),
            "--gate" => args.gates.push(value("--gate")?),
            "--report" => args.reports.push(value("--report")?),
            "--max-regress-pct" => {
                args.max_regress_pct = value("--max-regress-pct")?
                    .parse()
                    .map_err(|_| "--max-regress-pct wants a number".to_string())?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.baselines.is_empty() || args.results.is_empty() {
        return Err("need at least one --baseline and --results".to_string());
    }
    if args.gates.is_empty() && args.reports.is_empty() {
        return Err("need at least one --gate or --report".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };

    let load = |paths: &[String], parse: fn(&str) -> Vec<(String, f64)>| {
        let mut map: HashMap<String, f64> = HashMap::new();
        for path in paths {
            match std::fs::read_to_string(path) {
                Ok(text) => map.extend(parse(&text)),
                Err(e) => {
                    eprintln!("bench_gate: reading {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        map
    };
    let baseline = load(&args.baselines, parse_baseline);
    let measured = load(&args.results, parse_results);

    let mut failed = false;
    for gate in &args.gates {
        let (Some(&base), Some(&now)) = (baseline.get(gate), measured.get(gate)) else {
            eprintln!(
                "bench_gate: FAIL {gate}: missing from {}",
                if baseline.contains_key(gate) {
                    "the bench output"
                } else {
                    "the baseline"
                }
            );
            failed = true;
            continue;
        };
        let delta_pct = (now - base) / base * 100.0;
        let ok = delta_pct <= args.max_regress_pct;
        println!(
            "bench_gate: {} {gate}: baseline {base:.0} ns, measured {now:.0} ns ({delta_pct:+.1}%, limit +{:.0}%)",
            if ok { "ok" } else { "FAIL" },
            args.max_regress_pct,
        );
        failed |= !ok;
    }
    // Non-gating headlines: always shown, never fatal.
    for report in &args.reports {
        match (baseline.get(report), measured.get(report)) {
            (Some(&base), Some(&now)) => {
                let delta_pct = (now - base) / base * 100.0;
                println!(
                    "bench_gate: report {report}: baseline {base:.0} ns, measured {now:.0} ns \
                     ({delta_pct:+.1}%, not gated)"
                );
            }
            (None, Some(&now)) => {
                println!(
                    "bench_gate: report {report}: measured {now:.0} ns (new headline, no baseline)"
                );
            }
            (Some(&base), None) => {
                println!(
                    "bench_gate: report {report}: baseline {base:.0} ns, missing from the bench \
                     output (not gated)"
                );
            }
            (None, None) => {
                println!("bench_gate: report {report}: not found anywhere (not gated)");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_extraction() {
        let json = r#"{
  "results": [
    {
      "name": "serve/resolve-in-memory",
      "ns_per_iter": 202,
      "throughput_per_s": 4960717,
      "note": "text with \"ns_per_iter\": inside is not on its own line"
    },
    { "other": 1 },
    {
      "name": "dijkstra-large-map/csr",
      "ns_per_iter": 1013262
    }
  ]
}"#;
        assert_eq!(
            parse_baseline(json),
            vec![
                ("serve/resolve-in-memory".to_string(), 202.0),
                ("dijkstra-large-map/csr".to_string(), 1013262.0),
            ]
        );
    }

    #[test]
    fn results_extraction() {
        let out = "\
   Compiling pathalias-bench v0.1.0\n\
bench   serve/resolve-in-memory                               189 ns/iter   (#iters 1430000)   5295424 elem/s\n\
bench   cold-start/pagf-load                              1165372 ns/iter   (#iters 264)\n\
benchmark not-a-real-line\n";
        assert_eq!(
            parse_results(out),
            vec![
                ("serve/resolve-in-memory".to_string(), 189.0),
                ("cold-start/pagf-load".to_string(), 1165372.0),
            ]
        );
    }

    #[test]
    fn arg_validation() {
        let v = |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };
        assert!(parse_args(&v(&[])).is_err());
        assert!(parse_args(&v(&["--baseline", "b.json"])).is_err());
        assert!(parse_args(&v(&["--gate"])).is_err());
        // A --report alone satisfies the "something to check" rule;
        // neither gates nor reports is an error.
        let r = parse_args(&v(&[
            "--baseline",
            "b.json",
            "--results",
            "r.txt",
            "--report",
            "serve/multi-map-batched/64",
        ]))
        .unwrap();
        assert!(r.gates.is_empty());
        assert_eq!(r.reports, vec!["serve/multi-map-batched/64"]);
        assert!(parse_args(&v(&["--baseline", "b", "--results", "r"])).is_err());
        let a = parse_args(&v(&[
            "--baseline",
            "b.json",
            "--results",
            "r.txt",
            "--gate",
            "x/y",
            "--max-regress-pct",
            "50",
        ]))
        .unwrap();
        assert_eq!(a.max_regress_pct, 50.0);
        assert_eq!(a.gates, vec!["x/y"]);
    }

    #[test]
    fn regression_math() {
        // 30% over a 100ns baseline passes at exactly 130, fails at 131.
        let base = 100.0f64;
        for (now, ok) in [(130.0, true), (131.0, false), (90.0, true)] {
            let delta_pct = (now - base) / base * 100.0;
            assert_eq!(delta_pct <= 30.0, ok, "now={now}");
        }
    }
}
