//! Freeze semantics: the frozen-CSR pipeline's routing output must be
//! byte-identical to the seed's linked-list mapper.
//!
//! The oracle is `pathalias_bench::legacy` — the seed implementation
//! kept verbatim (linked adjacency traversal, graph-mutating back-link
//! pass, route traversal over the mutable graph). Each case parses the
//! same input twice (the legacy pass mutates its graph), runs both
//! pipelines, and compares the rendered text including hidden entries,
//! so networks, subdomains, private hosts, aliases, `adjust` biases
//! and `delete`d nodes are all covered.

use pathalias_bench::legacy::{legacy_routes, map_linked};
use pathalias_mapgen::{generate, MapSpec};
use pathalias_mapper::{map, MapOptions};
use pathalias_printer::{compute_routes, render, PrintOptions, Sort};
use proptest::prelude::*;

/// Renders a map through the frozen pipeline and through the seed
/// oracle; both strings, byte for byte.
fn both_renderings(text: &str, home: &str) -> (String, String) {
    let print_opts = PrintOptions {
        with_costs: true,
        sort: Sort::ByCost,
        include_hidden: true,
    };
    let map_opts = MapOptions::default();

    let g_new = pathalias_parser::parse(text).expect("map parses");
    let src = g_new.try_node(home).expect("home exists");
    let tree = map(&g_new, src, &map_opts).expect("frozen mapping succeeds");
    let new_text = render(&compute_routes(&tree), &print_opts);

    let mut g_old = pathalias_parser::parse(text).expect("map parses twice");
    let src = g_old.try_node(home).expect("home exists");
    let old_tree = map_linked(&mut g_old, src, &map_opts);
    let old_text = render(&legacy_routes(&g_old, &old_tree), &print_opts);

    (new_text, old_text)
}

/// Deterministically appends `adjust` and `delete` statements over the
/// generated hosts, so freeze-time bias folding and node dropping are
/// exercised even where the generator is gentle.
fn with_admin_statements(base: &str, home: &str, seed: u64) -> String {
    let g = pathalias_parser::parse(base).expect("base parses");
    let mut hosts: Vec<&str> = g
        .node_ids()
        .filter(|&id| {
            let n = g.node_ref(id);
            !n.is_net() && g.name(id) != home
        })
        .map(|id| g.name(id))
        .collect();
    hosts.sort_unstable();
    let mut extra = String::from("file { admin }\n");
    for (i, host) in hosts.iter().enumerate() {
        match (i as u64 + seed) % 17 {
            0 => extra.push_str(&format!(
                "adjust {{{host}({})}}\n",
                (seed % 900) as i64 - 300
            )),
            5 => extra.push_str(&format!("delete {{{host}}}\n")),
            _ => {}
        }
    }
    format!("{base}{extra}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated worlds — cliques (networks), chains, domains, dead
    /// hosts, aliases, private collisions — plus injected `adjust` and
    /// `delete` statements, render byte-identically through both
    /// pipelines.
    #[test]
    fn frozen_pipeline_matches_seed_on_generated_maps(
        hosts in 60usize..160,
        seed in 0u64..10_000,
    ) {
        let map = generate(&MapSpec::small(hosts, seed));
        let text = with_admin_statements(&map.concatenated(), &map.home, seed);
        let (new_text, old_text) = both_renderings(&text, &map.home);
        prop_assert_eq!(new_text, old_text);
    }
}

/// The full 1986-scale world: byte-identical before/after the
/// refactor (the acceptance check for PR 3).
#[test]
fn paper_scale_map_is_byte_identical() {
    let map = generate(&MapSpec::usenet_1986(1986));
    let (new_text, old_text) = both_renderings(&map.concatenated(), &map.home);
    assert_eq!(new_text.len(), old_text.len());
    assert_eq!(new_text, old_text);
    assert!(
        new_text.lines().count() > 5_000,
        "the map is actually large"
    );
}
