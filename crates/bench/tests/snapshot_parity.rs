//! PAGF1 round-trip parity: routes rendered from a frozen graph
//! loaded off disk must be byte-identical to routes from the
//! in-memory freeze — on generated worlds (proptest) and on the full
//! paper-scale map (the acceptance check for the snapshot format).
//!
//! The comparison goes through the staged pipeline both ways, so it
//! covers exactly what a daemon cold start runs: `Frozen::map` +
//! `Mapped::print` over a snapshot that crossed the disk boundary.

use pathalias_core::{Frozen, Options, Parsed};
use pathalias_mapgen::{generate, MapSpec};
use proptest::prelude::*;

/// Renders `text` once from the in-memory freeze and once from a
/// freeze that round-tripped through a PAGF1 file.
fn both_renderings(text: &str, home: &str) -> (String, String) {
    let options = Options {
        local: Some(home.to_string()),
        with_costs: true,
        include_hidden: true,
        ..Options::default()
    };
    let mut parsed = Parsed::new();
    parsed.push_str("world", text);
    let frozen = parsed.build(&options).expect("map builds").freeze();

    let path = std::env::temp_dir().join(format!(
        "pagf-parity-{}-{:x}.pagf",
        std::process::id(),
        pathalias_hash::fold(text) ^ pathalias_hash::fold(home),
    ));
    frozen.write_snapshot(&path).expect("snapshot writes");
    let loaded = Frozen::from_snapshot(&path).expect("snapshot loads");
    std::fs::remove_file(&path).expect("cleanup");

    assert_eq!(
        loaded.graph().as_ref(),
        frozen.graph().as_ref(),
        "loaded graph equals the freeze that wrote it"
    );
    let in_memory = frozen.map(&options).expect("maps").print(&options);
    let cold = loaded.map(&options).expect("maps").print(&options);
    (in_memory.rendered, cold.rendered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated worlds — cliques, chains, domains, aliases, private
    /// collisions — render byte-identically after the disk round trip.
    #[test]
    fn snapshot_routes_match_on_generated_maps(
        hosts in 60usize..200,
        seed in 0u64..10_000,
    ) {
        let map = generate(&MapSpec::small(hosts, seed));
        let (in_memory, cold) = both_renderings(&map.concatenated(), &map.home);
        prop_assert_eq!(in_memory, cold);
    }
}

/// The full 1986-scale world: the headline acceptance check.
#[test]
fn paper_scale_snapshot_routes_are_byte_identical() {
    let map = generate(&MapSpec::usenet_1986(1986));
    let (in_memory, cold) = both_renderings(&map.concatenated(), &map.home);
    assert_eq!(in_memory.len(), cold.len());
    assert_eq!(in_memory, cold);
    assert!(
        in_memory.lines().count() > 5_000,
        "the map is actually large"
    );
}
