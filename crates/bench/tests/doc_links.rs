//! Validates the repo's markdown cross-references.
//!
//! The docs satellite grew real internal links (README ↔
//! `docs/ARCHITECTURE.md` ↔ `docs/FORMATS.md`, plus pointers into the
//! source tree); a rename or move must fail CI rather than quietly
//! strand a reader. This checks every *relative* link target in the
//! tracked markdown files — external URLs are out of scope (CI runs
//! offline) and intra-file `#fragment` anchors are checked against the
//! target file's headings.

use std::path::{Path, PathBuf};

/// Repo root, two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// The markdown files whose links we guarantee. Deliberately a fixed
/// list: these are the documents that promise navigation.
const DOCS: &[&str] = &[
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/FORMATS.md",
    "ROADMAP.md",
];

/// Extracts `](target)` link targets from one markdown text, skipping
/// fenced code blocks (format examples contain bracketed text that is
/// not a link).
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            let after = &rest[i + 2..];
            let Some(end) = after.find(')') else { break };
            out.push(after[..end].trim().to_string());
            rest = &after[end + 1..];
        }
    }
    out
}

/// GitHub's heading-to-anchor slug: lowercase, spaces to dashes,
/// punctuation dropped (backticks included; `--flags` keep dashes).
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| match c {
            ' ' => Some('-'),
            '-' => Some('-'),
            c if c.is_alphanumeric() => Some(c.to_ascii_lowercase()),
            _ => None,
        })
        .collect()
}

fn anchors_of(text: &str) -> Vec<String> {
    let mut in_fence = false;
    text.lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                return false;
            }
            !in_fence && line.starts_with('#')
        })
        .map(|line| slug(line.trim_start_matches('#')))
        .collect()
}

#[test]
fn relative_markdown_links_resolve() {
    let root = repo_root();
    let mut failures = Vec::new();
    for doc in DOCS {
        let doc_path = root.join(doc);
        let text = std::fs::read_to_string(&doc_path)
            .unwrap_or_else(|e| panic!("{doc} must exist and read: {e}"));
        let doc_dir = doc_path.parent().expect("doc has a parent dir");
        for target in link_targets(&text) {
            // External and protocol links: out of scope offline.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, fragment) = match target.split_once('#') {
                Some((f, frag)) => (f, Some(frag)),
                None => (target.as_str(), None),
            };
            let resolved = if file_part.is_empty() {
                doc_path.clone()
            } else {
                doc_dir.join(file_part)
            };
            if !resolved.exists() {
                failures.push(format!("{doc}: broken link target `{target}`"));
                continue;
            }
            // Anchor check only for markdown targets (source links have
            // no headings to check against).
            if let Some(frag) = fragment {
                if resolved.extension().is_some_and(|e| e == "md") {
                    let target_text = std::fs::read_to_string(&resolved).expect("target reads");
                    if !anchors_of(&target_text).iter().any(|a| a == frag) {
                        failures.push(format!(
                            "{doc}: link `{target}` names a missing anchor `#{frag}`"
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "broken documentation links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn readme_links_the_doc_set() {
    // The README must route readers to both standalone documents —
    // the satellite contract, pinned so a future edit cannot silently
    // orphan them.
    let text = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    assert!(
        text.contains("docs/ARCHITECTURE.md"),
        "README must link the architecture doc"
    );
    assert!(
        text.contains("docs/FORMATS.md"),
        "README must link the formats doc"
    );
}
