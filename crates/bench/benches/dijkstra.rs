//! Mapping benchmarks: the frozen-CSR Dijkstra against the seed's
//! linked-list implementation, and the O(v²) scan for scale.
//!
//! Two comparisons matter here (recorded in `BENCH_map.json`):
//!
//! * `csr` vs `linked` — the PR-3 freeze refactor: identical
//!   algorithm, identical labels, different memory layout. `linked` is
//!   the seed code preserved verbatim in `pathalias_bench::legacy`.
//! * `heap` vs `quadratic` — the paper's E7: "Both asymptotically and
//!   pragmatically, the priority queue variant is a clear winner over
//!   the standard version of Dijkstra's algorithm, which runs in time
//!   proportional to v²."
//!
//! The sparse graphs have e ≈ 4v, like the USENET maps; `large-map` is
//! the full 1986-scale mapgen world (5,700 + 2,800 hosts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalias_bench::legacy::map_linked_readonly;
use pathalias_bench::random_sparse;
use pathalias_mapgen::{generate, MapSpec};
use pathalias_mapper::{map_frozen_quadratic_readonly, map_frozen_readonly, MapOptions};
use std::hint::black_box;
use std::sync::Arc;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    let opts = MapOptions::default();
    for &v in &[500usize, 1_000, 2_000, 4_000, 8_000] {
        let (g, src) = random_sparse(v, 4.0, 42);
        let frozen = Arc::new(g.freeze());
        group.bench_with_input(BenchmarkId::new("csr", v), &v, |b, _| {
            b.iter(|| {
                black_box(
                    map_frozen_readonly(&frozen, src, &opts)
                        .unwrap()
                        .mapped_count(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("linked", v), &v, |b, _| {
            b.iter(|| black_box(map_linked_readonly(&g, src, &opts).mapped_count()));
        });
        // The quadratic variant is capped at 4k nodes to keep the run
        // finite — which is itself the point of the experiment.
        if v <= 4_000 {
            group.bench_with_input(BenchmarkId::new("quadratic", v), &v, |b, _| {
                b.iter(|| {
                    black_box(
                        map_frozen_quadratic_readonly(&frozen, src, &opts)
                            .unwrap()
                            .mapped_count(),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_large_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra-large-map");
    let opts = MapOptions::default();
    let gen = generate(&MapSpec::usenet_1986(1986));
    let g = gen.parse().expect("generated map parses");
    let home = g.try_node(&gen.home).expect("home exists");

    // Freezing is part of the new pipeline's cost: measure it too.
    group.bench_function("freeze", |b| {
        b.iter(|| black_box(g.freeze().edge_count()));
    });

    let frozen = Arc::new(g.freeze());
    group.bench_function("csr", |b| {
        b.iter(|| {
            black_box(
                map_frozen_readonly(&frozen, home, &opts)
                    .unwrap()
                    .mapped_count(),
            )
        });
    });
    group.bench_function("linked", |b| {
        b.iter(|| black_box(map_linked_readonly(&g, home, &opts).mapped_count()));
    });
    group.finish();
}

criterion_group!(benches, bench_layouts, bench_large_map);
criterion_main!(benches);
