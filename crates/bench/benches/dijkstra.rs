//! E7: the priority-queue Dijkstra against the textbook O(v²) scan.
//!
//! The paper: "Both asymptotically and pragmatically, the priority
//! queue variant is a clear winner over the standard version of
//! Dijkstra's algorithm, which runs in time proportional to v²."
//! The sparse graphs here have e ≈ 4v, like the USENET maps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalias_bench::random_sparse;
use pathalias_mapper::{map_quadratic_readonly, map_readonly, MapOptions};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    let opts = MapOptions::default();
    for &v in &[500usize, 1_000, 2_000, 4_000, 8_000] {
        let (g, src) = random_sparse(v, 4.0, 42);
        group.bench_with_input(BenchmarkId::new("heap", v), &v, |b, _| {
            b.iter(|| black_box(map_readonly(&g, src, &opts).unwrap().mapped_count()));
        });
        // The quadratic variant is capped at 4k nodes to keep the run
        // finite — which is itself the point of the experiment.
        if v <= 4_000 {
            group.bench_with_input(BenchmarkId::new("quadratic", v), &v, |b, _| {
                b.iter(|| {
                    black_box(
                        map_quadratic_readonly(&g, src, &opts)
                            .unwrap()
                            .mapped_count(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
