//! E4: arena/pool allocation vs pointer-per-object allocation.
//!
//! The paper: "a buffered sbrk scheme for allocation, with no attempt
//! to re-use freed space, gives superior performance in both time and
//! space". The pooled `Graph` is the arena discipline; `BoxedGraph`
//! replicates the malloc-per-node layout. Space numbers come from the
//! experiments binary (counting allocator); this bench measures time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalias_bench::map_text;
use pathalias_graph::boxed::BoxedGraph;
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let text = map_text(2_000, 11);
    let parsed = pathalias_parser::parse(&text).unwrap();
    let mut group = c.benchmark_group("alloc");

    // Parse-and-build into the pooled representation (the pipeline's
    // allocation pattern: everything allocated forward, nothing freed).
    group.bench_function(BenchmarkId::new("pooled-build", parsed.node_count()), |b| {
        b.iter(|| black_box(pathalias_parser::parse(&text).unwrap().link_count()));
    });
    // Clone the same graph into one-allocation-per-link boxes.
    group.bench_function(BenchmarkId::new("boxed-build", parsed.node_count()), |b| {
        b.iter(|| black_box(BoxedGraph::from_graph(&parsed).link_count()));
    });
    // Traversal locality: walk all adjacency lists in each layout.
    group.bench_function(BenchmarkId::new("pooled-walk", parsed.node_count()), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for id in parsed.node_ids() {
                for (_, l) in parsed.links_from(id) {
                    acc = acc.wrapping_add(l.cost);
                }
            }
            black_box(acc)
        });
    });
    let boxed = BoxedGraph::from_graph(&parsed);
    group.bench_function(BenchmarkId::new("boxed-walk", parsed.node_count()), |b| {
        b.iter(|| black_box(boxed.checksum()));
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
