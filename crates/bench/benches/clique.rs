//! E8: the clique-as-star network representation.
//!
//! The paper: "A clique with n vertices contains about n² edges, so
//! with over 2,000 hosts in the ARPANET we are faced with millions of
//! edges. To avoid a quadratic explosion in time and space complexity,
//! we represent a network as a single node."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalias_bench::clique_world;
use pathalias_mapper::{map_frozen_readonly, MapOptions};
use std::hint::black_box;
use std::sync::Arc;

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique");
    group.sample_size(10);
    let opts = MapOptions::default();
    for &n in &[250usize, 500, 1_000, 2_000] {
        group.bench_with_input(BenchmarkId::new("star-map", n), &n, |b, &n| {
            let (g, src) = clique_world(n, true);
            let frozen = Arc::new(g.freeze());
            b.iter(|| {
                black_box(
                    map_frozen_readonly(&frozen, src, &opts)
                        .unwrap()
                        .mapped_count(),
                )
            });
        });
        // The explicit clique at 2,000 members is exactly the paper's
        // "millions of edges" scenario.
        group.bench_with_input(BenchmarkId::new("clique-map", n), &n, |b, &n| {
            let (g, src) = clique_world(n, false);
            let frozen = Arc::new(g.freeze());
            b.iter(|| {
                black_box(
                    map_frozen_readonly(&frozen, src, &opts)
                        .unwrap()
                        .mapped_count(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("star-build", n), &n, |b, &n| {
            b.iter(|| black_box(clique_world(n, true).0.link_count()));
        });
        group.bench_with_input(BenchmarkId::new("clique-build", n), &n, |b, &n| {
            b.iter(|| black_box(clique_world(n, false).0.link_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
