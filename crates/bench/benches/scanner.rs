//! E3: the hand-built scanner against the lex-style baseline.
//!
//! The paper: "we built a simple scanner and cut the overall run time
//! by 40%" (half the original run time had been spent in lex).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathalias_bench::map_text;
use std::hint::black_box;

fn bench_scanners(c: &mut Criterion) {
    let text = map_text(2_000, 7);
    let mut group = c.benchmark_group("scanner");
    group.throughput(Throughput::Bytes(text.len() as u64));

    group.bench_with_input(BenchmarkId::new("hand-built", text.len()), &text, |b, t| {
        b.iter(|| black_box(pathalias_parser::scan::tokenize("map", t).unwrap().len()));
    });
    group.bench_with_input(BenchmarkId::new("lex-style", text.len()), &text, |b, t| {
        b.iter(|| black_box(pathalias_parser::slow::tokenize("map", t).unwrap().len()));
    });
    // The whole parse with the fast scanner, to put the scanner share
    // of total run time in context (the paper's 40 % claim is about
    // total run time).
    group.bench_with_input(BenchmarkId::new("full-parse", text.len()), &text, |b, t| {
        b.iter(|| black_box(pathalias_parser::parse(t).unwrap().node_count()));
    });
    group.finish();
}

criterion_group!(benches, bench_scanners);
criterion_main!(benches);
