//! E9: the full pipeline at the paper's 1986 scale.
//!
//! "USENET maps contain over 5,700 nodes and 20,000 links, while
//! ARPANET, CSNET, and BITNET add another 2,800 nodes and 8,000 links."

use criterion::{criterion_group, criterion_main, Criterion};
use pathalias_bench::paper_scale_text;
use pathalias_mapper::{map_frozen_readonly, MapOptions};
use pathalias_printer::{compute_routes, render, PrintOptions};
use std::hint::black_box;
use std::sync::Arc;

fn bench_phases(c: &mut Criterion) {
    let text = paper_scale_text(1986);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("parse", |b| {
        b.iter(|| black_box(pathalias_parser::parse(&text).unwrap().node_count()));
    });

    let g = pathalias_parser::parse(&text).unwrap();
    let home = g.try_node("uncvax").expect("home hub");
    let opts = MapOptions::default();
    group.bench_function("freeze", |b| {
        b.iter(|| black_box(g.freeze().edge_count()));
    });

    let frozen = Arc::new(g.freeze());
    group.bench_function("map", |b| {
        b.iter(|| {
            black_box(
                map_frozen_readonly(&frozen, home, &opts)
                    .unwrap()
                    .mapped_count(),
            )
        });
    });

    let tree = map_frozen_readonly(&frozen, home, &opts).unwrap();
    group.bench_function("print", |b| {
        b.iter(|| {
            let table = compute_routes(&tree);
            black_box(render(&table, &PrintOptions::default()).len())
        });
    });

    group.bench_function("whole-pipeline", |b| {
        b.iter(|| {
            let g = pathalias_parser::parse(&text).unwrap();
            let home = g.try_node("uncvax").unwrap();
            let frozen = Arc::new(g.freeze());
            let tree = map_frozen_readonly(&frozen, home, &opts).unwrap();
            let table = compute_routes(&tree);
            black_box(render(&table, &PrintOptions::default()).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
