//! E5/E6/E13: the host-name hash table.
//!
//! E5 compares the paper's inverse secondary hash with the textbook
//! `1+(k mod T-2)` it found anomalous; E6 compares the three growth
//! schedules; probe-count tables come from the experiments binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalias_bench::host_names;
use pathalias_hash::{GrowthPolicy, HostTable, SecondaryHash, TableConfig, ALPHA_LOW};
use std::hint::black_box;

fn fill(config: TableConfig, names: &[String]) -> HostTable<u32> {
    let mut t = HostTable::with_config(config);
    for (i, n) in names.iter().enumerate() {
        t.insert(n, i as u32);
    }
    t
}

fn bench_hash(c: &mut Criterion) {
    let names = host_names(8_500); // The paper's host count.
    let mut group = c.benchmark_group("hashing");

    for (label, secondary) in [
        ("inverse", SecondaryHash::Inverse),
        ("plus-one", SecondaryHash::PlusOne),
    ] {
        let config = TableConfig {
            secondary,
            ..TableConfig::default()
        };
        group.bench_function(BenchmarkId::new("insert", label), |b| {
            b.iter(|| black_box(fill(config, &names).len()));
        });
        let mut table = fill(config, &names);
        group.bench_function(BenchmarkId::new("lookup", label), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for n in &names {
                    hits += usize::from(table.get(n).is_some());
                }
                black_box(hits)
            });
        });
    }

    for (label, growth) in [
        ("fibonacci", GrowthPolicy::FibonacciPrimes),
        ("geometric-2", GrowthPolicy::Geometric(2.0)),
        (
            "arithmetic",
            GrowthPolicy::ArithmeticLowWater {
                step: 512,
                alpha_low: ALPHA_LOW,
            },
        ),
    ] {
        let config = TableConfig {
            growth,
            ..TableConfig::default()
        };
        group.bench_function(BenchmarkId::new("grow", label), |b| {
            b.iter(|| black_box(fill(config, &names).capacity()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
