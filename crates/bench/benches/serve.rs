//! Daemon lookup throughput against a 10k-host synthetic map.
//!
//! Three altitudes, so a regression can be localized: the bare
//! in-memory resolve path (no socket), one client's request/response
//! round trip over loopback TCP, and 8 concurrent clients hammering
//! the daemon at once. Numbers are checked in to `BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathalias_core::{Options, Pathalias};
use pathalias_mailer::RouteDb;
use pathalias_mapgen::{generate, MapSpec};
use pathalias_server::cache::ShardedCache;
use pathalias_server::metrics::Metrics;
use pathalias_server::{resolve, Client, MapSource, RouteIndex, Server, ServerConfig};
use std::hint::black_box;

/// Routes a 10k-host synthetic map; returns the table and some
/// known-routable destination names.
fn ten_k_table() -> (RouteDb, Vec<String>) {
    let map = generate(&MapSpec::small(10_000, 1986));
    let mut pa = Pathalias::with_options(Options {
        local: Some(map.home.clone()),
        ..Options::default()
    });
    pa.parse_str("bench-map", &map.concatenated()).unwrap();
    let out = pa.run().unwrap();
    let db = RouteDb::from_table(&out.routes);
    let mut hosts: Vec<String> = db.iter().map(|e| e.name.clone()).collect();
    hosts.sort();
    hosts.truncate(2_048);
    (db, hosts)
}

fn bench_serve(c: &mut Criterion) {
    let (db, hosts) = ten_k_table();
    let mut group = c.benchmark_group("serve");

    // Altitude 1: the resolve path alone (snapshot + cache + metrics).
    let index = RouteIndex::new(db.clone(), 0);
    let cache = ShardedCache::new(4096, 8);
    let metrics = Metrics::default();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("resolve-in-memory", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(resolve(&index, &cache, &metrics, host, "user"))
        });
    });

    // A live daemon for the socket benchmarks, serving the same table.
    let dir = std::env::temp_dir();
    let routes_path = dir.join(format!(
        "pathalias-bench-serve-{}.routes",
        std::process::id()
    ));
    let rendered: String = db
        .iter()
        .map(|e| format!("{}\t{}\n", e.name, e.route))
        .collect();
    std::fs::write(&routes_path, rendered).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(
        routes_path.clone(),
    )))
    .expect("bench server starts");
    let addr = handle.tcp_addr().unwrap();

    // Altitude 2: one client, one round trip per iteration.
    let mut client = Client::connect(addr).unwrap();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("query-round-trip", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(client.query(host, Some("user")).unwrap())
        });
    });

    // Altitude 3: 8 concurrent clients, 200 queries each per iteration.
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 200;
    group.throughput(Throughput::Elements((CLIENTS * PER_CLIENT) as u64));
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("query-concurrent", CLIENTS),
        &CLIENTS,
        |b, &clients| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..clients {
                        let hosts = &hosts;
                        s.spawn(move || {
                            let mut c = Client::connect(addr).unwrap();
                            for q in 0..PER_CLIENT {
                                let host = &hosts[(t * 997 + q) % hosts.len()];
                                black_box(c.query(host, Some("user")).unwrap());
                            }
                            c.quit().unwrap();
                        });
                    }
                });
            });
        },
    );

    group.finish();
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(routes_path).unwrap();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
