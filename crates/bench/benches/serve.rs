//! Daemon lookup throughput against a 10k-host synthetic map.
//!
//! Altitudes, so a regression can be localized: the bare in-memory
//! resolve path (snapshot + cache + metrics, no socket), the same
//! path with per-request telemetry recording (latency histogram +
//! slow-log probe — the daemon's added cost per QUERY), the same path
//! over a page-cache-backed PADB1 file (`MappedDb`), one client's
//! request/response round trip over loopback TCP (in-memory and mmap
//! backends), the v2 batched `MQUERY` path (64 queries per round
//! trip — the number that must beat single-query by ≥ 3×), and 8
//! concurrent clients hammering the daemon at once. A second group
//! measures the `PATH` verb's point-to-point searches on the
//! paper-scale world: the bidirectional engine against its
//! uni-directional oracle (the acceptance bar: bidirectional wins)
//! and the verb's wire round trip. Numbers are checked in to
//! `BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathalias_core::{Frozen, Options, Parsed, Pathalias};
use pathalias_mailer::disk::{write_db, MappedDb};
use pathalias_mailer::{Resolver, RouteDb, SharedRouteDb};
use pathalias_server::index::Cached;
use pathalias_server::metrics::Metrics;
use pathalias_server::telemetry::duration_ns;
use pathalias_server::{Client, MapSource, MapTelemetry, Server, ServerConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Queries per `MQUERY` batch in the batched benchmarks.
const BATCH: usize = 64;

/// Routes a 10k-host synthetic map; returns the table and some
/// known-routable destination names.
fn ten_k_table() -> (RouteDb, Vec<String>) {
    let map = generate_map();
    let mut pa = Pathalias::with_options(Options {
        local: Some(map.1.clone()),
        ..Options::default()
    });
    pa.parse_str("bench-map", &map.0).unwrap();
    let out = pa.run().unwrap();
    let db = RouteDb::from_table(&out.routes);
    let mut hosts: Vec<String> = db.iter().map(|e| e.name.clone()).collect();
    hosts.sort();
    hosts.truncate(2_048);
    (db, hosts)
}

fn generate_map() -> (String, String) {
    use pathalias_mapgen::{generate, MapSpec};
    let map = generate(&MapSpec::small(10_000, 1986));
    (map.concatenated(), map.home.clone())
}

fn bench_serve(c: &mut Criterion) {
    let (db, hosts) = ten_k_table();
    let mut group = c.benchmark_group("serve");

    // Altitude 1: the resolve path alone (snapshot + cache + metrics),
    // in-memory backend.
    let cached = Cached::new(
        SharedRouteDb::new(db.clone()),
        4096,
        8,
        Arc::new(Metrics::default()),
    );
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("resolve-in-memory", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(cached.resolve(host, "user"))
        });
    });

    // Altitude 1c: the identical resolve with telemetry recording
    // around it — exactly what the daemon adds per QUERY: a clock
    // read, a histogram record (three relaxed adds + a fetch_max) and
    // the slow-log admission probe. Gated against the bare
    // resolve-in-memory baseline: recording must stay inside the
    // ordinary bench tolerance, i.e. cost roughly nothing.
    let telemetry = MapTelemetry::new();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("resolve-in-memory-telemetry", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            let t0 = std::time::Instant::now();
            let out = cached.resolve(host, "user");
            let ns = duration_ns(t0.elapsed());
            telemetry.query.record(ns);
            let outcome = if out.is_ok() { "ok" } else { "no_route" };
            telemetry.observe_slow("QUERY", "bench", host, ns, outcome);
            black_box(out)
        });
    });

    // The same table as a PADB1 file, for the mapped benchmarks.
    let dir = std::env::temp_dir();
    let padb_path = dir.join(format!("pathalias-bench-serve-{}.padb", std::process::id()));
    write_db(&db, &padb_path).unwrap();

    // Altitude 1b: resolve path over the page-cache-backed file —
    // same decorator, disk-backed resolver.
    let mapped = Cached::new(
        MappedDb::open(&padb_path).unwrap(),
        4096,
        8,
        Arc::new(Metrics::default()),
    );
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("resolve-mmap", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(mapped.resolve(host, "user"))
        });
    });

    // A live daemon for the socket benchmarks, serving the same table.
    let routes_path = dir.join(format!(
        "pathalias-bench-serve-{}.routes",
        std::process::id()
    ));
    let rendered: String = db
        .iter()
        .map(|e| format!("{}\t{}\n", e.name, e.route))
        .collect();
    std::fs::write(&routes_path, rendered).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(
        routes_path.clone(),
    )))
    .expect("bench server starts");
    let addr = handle.tcp_addr().unwrap();

    // Altitude 2: one client, one round trip per query.
    let mut client = Client::connect(addr).unwrap();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("query-round-trip", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(client.query(host, Some("user")).unwrap())
        });
    });

    // Altitude 2b: the v2 batched path — BATCH queries per round trip.
    // This is the number the acceptance bar compares against
    // query-round-trip (per-query cost must be ≥ 3× better).
    let mut batch_client = Client::connect(addr).unwrap();
    batch_client.negotiate().unwrap();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_with_input(
        BenchmarkId::new("query-batched", BATCH),
        &BATCH,
        |b, &batch| {
            b.iter(|| {
                let queries: Vec<(&str, Option<&str>)> = (0..batch)
                    .map(|k| (hosts[(i + k) % hosts.len()].as_str(), Some("user")))
                    .collect();
                i = i.wrapping_add(batch);
                black_box(batch_client.query_batch(&queries).unwrap())
            });
        },
    );

    // Altitude 3: 8 concurrent clients, 200 queries each per iteration.
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 200;
    group.throughput(Throughput::Elements((CLIENTS * PER_CLIENT) as u64));
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("query-concurrent", CLIENTS),
        &CLIENTS,
        |b, &clients| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..clients {
                        let hosts = &hosts;
                        s.spawn(move || {
                            let mut c = Client::connect(addr).unwrap();
                            for q in 0..PER_CLIENT {
                                let host = &hosts[(t * 997 + q) % hosts.len()];
                                black_box(c.query(host, Some("user")).unwrap());
                            }
                            c.quit().unwrap();
                        });
                    }
                });
            });
        },
    );

    client.quit().unwrap();
    batch_client.quit().unwrap();
    handle.shutdown();

    // Altitude 2c: the mmap-backed serve path end to end — a daemon
    // whose backend never loads the blob, one query per round trip.
    let mmap_handle = Server::start(ServerConfig::ephemeral(MapSource::PadbMmap(
        padb_path.clone(),
    )))
    .expect("mmap bench server starts");
    let mmap_addr = mmap_handle.tcp_addr().unwrap();
    let mut mmap_client = Client::connect(mmap_addr).unwrap();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("query-round-trip-mmap", |b| {
        b.iter(|| {
            let host = &hosts[i % hosts.len()];
            i = i.wrapping_add(1);
            black_box(mmap_client.query(host, Some("user")).unwrap())
        });
    });
    mmap_client.quit().unwrap();
    mmap_handle.shutdown();

    // Altitude 2e: sharded multi-map serving — the same table behind
    // three namespaces, batches rotating across them, so every round
    // trip pays the `@name` dispatch on top of the MQUERY path. The
    // number to compare against query-batched: the multi-map layer
    // should cost roughly nothing.
    let multi_handle = Server::start(ServerConfig::ephemeral_set(vec![
        ("west".to_string(), MapSource::Routes(routes_path.clone())),
        ("east".to_string(), MapSource::Routes(routes_path.clone())),
        ("local".to_string(), MapSource::Routes(routes_path.clone())),
    ]))
    .expect("multi-map bench server starts");
    let mut multi_client = Client::connect(multi_handle.tcp_addr().unwrap()).unwrap();
    multi_client.negotiate().unwrap();
    const MAPS: [&str; 3] = ["west", "east", "local"];
    let mut i = 0usize;
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_with_input(
        BenchmarkId::new("multi-map-batched", BATCH),
        &BATCH,
        |b, &batch| {
            b.iter(|| {
                let map = MAPS[i % MAPS.len()];
                let queries: Vec<(&str, Option<&str>)> = (0..batch)
                    .map(|k| (hosts[(i + k) % hosts.len()].as_str(), Some("user")))
                    .collect();
                i = i.wrapping_add(batch);
                black_box(multi_client.query_batch_on(Some(map), &queries).unwrap())
            });
        },
    );
    multi_client.quit().unwrap();
    multi_handle.shutdown();

    group.finish();
    std::fs::remove_file(routes_path).unwrap();
    std::fs::remove_file(padb_path).unwrap();
}

/// Point-to-point searches on the paper-scale world: the bidirectional
/// engine behind `PATH src dst` against its uni-directional oracle on
/// the same src/dst rotation (the acceptance bar: bidirectional wins),
/// plus the verb's full wire round trip for context. Pairs are strided
/// across the id space and pre-filtered to routable ones, so both
/// searches measure successful answers over a near-and-far endpoint
/// mix.
fn bench_path(c: &mut Criterion) {
    use pathalias_graph::NodeId;
    use pathalias_mapgen::{generate, MapSpec};
    use pathalias_router::PointToPoint;

    let world = generate(&MapSpec::usenet_1986(1986));
    let options = Options {
        local: Some(world.home.clone()),
        ..Options::default()
    };
    let mut parsed = Parsed::new();
    parsed.push_str("world", &world.concatenated());
    let frozen = parsed.build(&options).unwrap().freeze();
    // The serving invariant's construction: the engine answers over the
    // same augmented snapshot the mapper printed routes from.
    let mapped = frozen.map(&options).unwrap();
    let aug = mapped.tree.frozen().clone();
    let engine = PointToPoint::new(aug.clone(), options.cost_model);

    let n = aug.node_count() as u32;
    let home = aug.id_of(&world.home).expect("home survives freezing");
    let mut sources: Vec<NodeId> = vec![home];
    sources.extend(
        (1..8u32)
            .map(|k| NodeId::from_raw(k * n / 8))
            .filter(|&s| aug.is_mappable(s)),
    );
    let per_source: Vec<Vec<(NodeId, NodeId)>> = sources
        .iter()
        .enumerate()
        .map(|(k, &src)| {
            aug.node_ids()
                .skip(k * 19)
                .step_by(101)
                .filter(|&dst| dst != src && engine.route_ids(src, dst).is_ok())
                .map(|dst| (src, dst))
                .take(32)
                .collect()
        })
        .collect();
    // Interleave sources round-robin so a partial rotation round still
    // samples cheap (home-rooted) and expensive pairs evenly.
    let longest = per_source.iter().map(Vec::len).max().unwrap_or(0);
    let pairs: Vec<(NodeId, NodeId)> = (0..longest)
        .flat_map(|j| {
            per_source
                .iter()
                .filter_map(move |list| list.get(j).copied())
        })
        .collect();
    assert!(
        !pairs.is_empty(),
        "no routable pairs on the paper-scale world"
    );

    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("path-in-memory", |b| {
        b.iter(|| {
            let (src, dst) = pairs[i % pairs.len()];
            i = i.wrapping_add(1);
            black_box(engine.route_ids(src, dst).unwrap())
        });
    });
    let mut i = 0usize;
    group.bench_function("path-unidirectional", |b| {
        b.iter(|| {
            let (src, dst) = pairs[i % pairs.len()];
            i = i.wrapping_add(1);
            black_box(engine.route_ids_unidirectional(src, dst).unwrap())
        });
    });

    // The contraction-hierarchy tier on the same pair rotation (the
    // acceptance bar: CH beats path-in-memory). Built fresh here the
    // way `serve` rebuilds it over an augmented graph; freeze-time
    // sections skip this one-time cost at startup, not per query.
    let ch_engine = PointToPoint::with_fresh_hierarchy(aug.clone(), options.cost_model);
    assert!(
        ch_engine.hierarchy().is_some(),
        "paper-scale world must yield a hierarchy"
    );
    let mut i = 0usize;
    group.bench_function("path-ch", |b| {
        b.iter(|| {
            let (src, dst) = pairs[i % pairs.len()];
            i = i.wrapping_add(1);
            black_box(ch_engine.route_ids(src, dst).unwrap())
        });
    });

    // The verb over loopback TCP: one `PATH src dst` per round trip,
    // against a daemon serving this same world — socket framing plus
    // name resolution plus the search.
    let map_path =
        std::env::temp_dir().join(format!("pathalias-bench-path-{}.map", std::process::id()));
    std::fs::write(&map_path, world.concatenated()).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::map_files(
        vec![map_path.clone()],
        options.clone(),
    )))
    .expect("path bench server starts");
    let mut client = Client::connect(handle.tcp_addr().unwrap()).unwrap();
    let named: Vec<(String, String)> = pairs
        .iter()
        .map(|&(s, d)| (aug.name(s).to_string(), aug.name(d).to_string()))
        .collect();
    let mut i = 0usize;
    group.throughput(Throughput::Elements(1));
    group.bench_function("path-round-trip", |b| {
        b.iter(|| {
            let (src, dst) = &named[i % named.len()];
            i = i.wrapping_add(1);
            black_box(client.path(src, dst).unwrap().unwrap())
        });
    });
    client.quit().unwrap();
    handle.shutdown();

    group.finish();
    std::fs::remove_file(map_path).unwrap();
}

/// Daemon cold start on the paper-scale world: reaching a servable
/// `Frozen` stage through the full parse/build/freeze pipeline vs
/// loading the PAGF1 snapshot (the acceptance bar: the snapshot path
/// must be ≥ 10× faster), plus the snapshot path all the way to a
/// serveable route table for context.
fn bench_cold_start(c: &mut Criterion) {
    use pathalias_mapgen::{generate, MapSpec};

    let world = generate(&MapSpec::usenet_1986(1986));
    let text = world.concatenated();
    let options = Options {
        local: Some(world.home.clone()),
        ..Options::default()
    };

    let pagf_path =
        std::env::temp_dir().join(format!("pathalias-bench-cold-{}.pagf", std::process::id()));
    {
        let mut parsed = Parsed::new();
        parsed.push_str("world", &text);
        let frozen = parsed.build(&options).unwrap().freeze();
        frozen.write_snapshot(&pagf_path).unwrap();
    }

    let mut group = c.benchmark_group("cold-start");
    group.sample_size(10);

    group.bench_function("parse-build-freeze", |b| {
        b.iter(|| {
            let mut parsed = Parsed::new();
            parsed.push_str("world", black_box(&text));
            black_box(parsed.build(&options).unwrap().freeze())
        });
    });

    group.bench_function("pagf-load", |b| {
        b.iter(|| black_box(Frozen::from_snapshot(&pagf_path).unwrap()));
    });

    group.bench_function("pagf-serve-ready", |b| {
        b.iter(|| {
            let frozen = Frozen::from_snapshot(&pagf_path).unwrap();
            let mapped = frozen.map(&options).unwrap();
            black_box(mapped.print(&options))
        });
    });

    group.finish();
    std::fs::remove_file(pagf_path).unwrap();
}

/// C10K-style connection-scaling shape for the event-loop core: open a
/// large herd of mostly-idle connections (default 2048; `C10K_CONNS`
/// overrides, CI smoke uses 512), verify each answers, then measure
/// query latency from a small hot subset while the idle herd stays
/// registered with the pollers. The numbers to watch: accept cost per
/// connection, and hot-path p50/p99 that must not degrade just because
/// thousands of idle fds sit in the readiness sets.
///
/// This bypasses `Bencher` (latency percentiles, not best-batch means)
/// but prints the same `bench <name> <ns> ns/iter` lines so the CI
/// bench gate tracks the numbers like any other.
fn bench_c10k(_c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let conns: usize = std::env::var("C10K_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 512 } else { 2_048 });
    let samples: usize = if quick { 4_000 } else { 20_000 };
    const HOT: usize = 32;

    // A small table: this benchmark is about the connection layer, not
    // the resolver.
    let mut rendered = String::new();
    for i in 0..200 {
        rendered.push_str(&format!("h{i}\trelay!h{i}!%s\n"));
    }
    let routes_path = std::env::temp_dir().join(format!(
        "pathalias-bench-c10k-{}.routes",
        std::process::id()
    ));
    std::fs::write(&routes_path, rendered).unwrap();
    let handle = Server::start(ServerConfig::ephemeral(MapSource::Routes(
        routes_path.clone(),
    )))
    .expect("c10k bench server starts");
    let addr = handle.tcp_addr().unwrap();

    let report = |label: &str, ns: f64, iters: usize| {
        let label = format!("serve/{label}");
        println!("bench   {label:<44} {ns:>12.0} ns/iter   (#iters {iters})");
    };

    // Accept throughput: connect the whole herd back to back. The
    // kernel completes handshakes from the listen backlog, so this
    // measures how fast the daemon's accept+register path drains it.
    let t0 = std::time::Instant::now();
    let mut herd: Vec<Client> = (0..conns)
        .map(|_| Client::connect(addr).expect("idle connection"))
        .collect();
    report(
        "c10k-accept",
        t0.elapsed().as_nanos() as f64 / conns as f64,
        conns,
    );

    // Every herd member must actually be served — one round trip each
    // proves the daemon registered all of them, and leaves the herd
    // idle-but-open for the latency measurement below.
    for (i, conn) in herd.iter_mut().enumerate() {
        let host = format!("h{}", i % 200);
        assert!(conn.query(&host, Some("u")).unwrap().is_some());
    }

    // Hot subset: fresh clients doing sequential queries while the
    // idle herd keeps its fds registered with the event loops.
    let mut hot: Vec<Client> = (0..HOT).map(|_| Client::connect(addr).unwrap()).collect();
    let mut lat_ns: Vec<u64> = Vec::with_capacity(samples);
    for q in 0..samples {
        let client = &mut hot[q % HOT];
        let host = format!("h{}", (q * 7) % 200);
        let t = std::time::Instant::now();
        black_box(client.query(&host, Some("u")).unwrap());
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    report("c10k-query-p50", lat_ns[samples / 2] as f64, samples);
    report(
        "c10k-query-p99",
        lat_ns[samples - samples / 100 - 1] as f64,
        samples,
    );

    for c in hot {
        let _ = c.quit();
    }
    drop(herd);
    handle.shutdown();
    std::fs::remove_file(routes_path).unwrap();
}

fn bench_reload(c: &mut Criterion) {
    use pathalias_bench::ReloadWorld;
    use pathalias_mapgen::MapSpec;

    // One link-cost change on the paper-scale world: the incremental
    // path (statement diff -> CSR row patch -> tree repair -> route
    // update) against tearing the whole pipeline down. `ReloadWorld`
    // pre-verified that this exact edit takes the delta path, so
    // `reload-delta` measures repair, not the fallback.
    let world = ReloadWorld::new(&MapSpec::usenet_1986(1986), "serve-bench");
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    let (source, cache) = world.delta_source();
    source.load_serving_timed().unwrap();
    let mut flip = false;
    group.bench_function("reload-delta", |b| {
        b.iter(|| {
            flip = !flip;
            world.toggle(flip);
            black_box(source.load_serving_timed().unwrap());
        });
    });
    assert!(
        cache.delta_reloads() > 0,
        "the timed reloads never took the delta path"
    );

    group.bench_function("reload-full", |b| {
        b.iter(|| {
            flip = !flip;
            world.toggle(flip);
            let (cold, _) = world.delta_source();
            black_box(cold.load_serving_timed().unwrap());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serve,
    bench_path,
    bench_cold_start,
    bench_c10k,
    bench_reload
);
criterion_main!(benches);
