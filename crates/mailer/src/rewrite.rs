//! Address rewriting policies.
//!
//! "Another issue that must be settled is the extent to which pathalias
//! data is allowed to override a user's selection of a path. In
//! particular, given a hideously long UUCP path (such as one generated
//! by a USENET reply), should the mailer simply find a route to the
//! first site in the string, or should it search for the rightmost host
//! known to its database?"

use crate::address::{AddrError, Address, SyntaxStyle};
use crate::routedb::RouteDb;
use std::fmt;

/// How aggressively the route database overrides a user's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// "it may be desirable to turn off optimization entirely" — the
    /// address passes through untouched.
    Off,
    /// Route to the first site in the string; the rest rides along as
    /// the argument. The safe choice.
    #[default]
    FirstHop,
    /// Search for the rightmost host known to the database and route
    /// to it directly. "Can result in significant savings;
    /// unfortunately, it can backfire if the user wants to use a
    /// circuitous route for some reason."
    RightmostKnown,
}

/// A rewriting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The address did not parse.
    Addr(AddrError),
    /// No host in the path is known to the database.
    NoRoute(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Addr(e) => write!(f, "bad address: {e}"),
            RewriteError::NoRoute(a) => write!(f, "no route for `{a}`"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<AddrError> for RewriteError {
    fn from(e: AddrError) -> Self {
        RewriteError::Addr(e)
    }
}

/// Rewrites user-supplied addresses against a route database.
#[derive(Debug, Clone)]
pub struct Rewriter<'db> {
    db: &'db RouteDb,
    style: SyntaxStyle,
    policy: Policy,
    preserve_loops: bool,
}

impl<'db> Rewriter<'db> {
    /// A rewriter with default style (heuristic), policy (first hop)
    /// and loop preservation on.
    pub fn new(db: &'db RouteDb) -> Self {
        Rewriter {
            db,
            style: SyntaxStyle::default(),
            policy: Policy::default(),
            preserve_loops: true,
        }
    }

    /// Sets the parsing style.
    pub fn style(mut self, style: SyntaxStyle) -> Self {
        self.style = style;
        self
    }

    /// Sets the rewriting policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Controls loop preservation: "Loop tests are a time-honored UUCP
    /// tradition, and an overly-enthusiastic optimizer can eliminate
    /// them altogether." When on (the default), paths that visit a host
    /// twice are never optimized.
    pub fn preserve_loops(mut self, on: bool) -> Self {
        self.preserve_loops = on;
        self
    }

    fn has_loop(addr: &Address) -> bool {
        let mut seen = std::collections::HashSet::new();
        addr.hops.iter().any(|h| !seen.insert(h))
    }

    /// Rewrites one address into a concrete bang-path route.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathalias_mailer::{Policy, RouteDb, Rewriter};
    ///
    /// let db = RouteDb::from_output("b\ta!b!%s\n").unwrap();
    /// let rw = Rewriter::new(&db).policy(Policy::RightmostKnown);
    /// // b is the rightmost known host: route there, keep the tail.
    /// assert_eq!(rw.rewrite("x!y!b!z!user").unwrap(), "a!b!z!user");
    /// ```
    pub fn rewrite(&self, text: &str) -> Result<String, RewriteError> {
        let addr = Address::parse(text, self.style)?;
        if addr.hops.is_empty() {
            // Local delivery; nothing to route.
            return Ok(addr.user);
        }
        if self.policy == Policy::Off || (self.preserve_loops && Self::has_loop(&addr)) {
            return Ok(addr.to_bang_path());
        }
        match self.policy {
            Policy::Off => unreachable!("handled above"),
            Policy::FirstHop => {
                let first = &addr.hops[0];
                let rest = tail_argument(&addr.hops[1..], &addr.user);
                self.db
                    .route_to(first, &rest)
                    .ok_or_else(|| RewriteError::NoRoute(text.to_string()))
            }
            Policy::RightmostKnown => {
                // Scan right to left for a host we can route to.
                for i in (0..addr.hops.len()).rev() {
                    if self.db.lookup(&addr.hops[i]).is_some() {
                        let rest = tail_argument(&addr.hops[i + 1..], &addr.user);
                        return self
                            .db
                            .route_to(&addr.hops[i], &rest)
                            .ok_or_else(|| RewriteError::NoRoute(text.to_string()));
                    }
                }
                Err(RewriteError::NoRoute(text.to_string()))
            }
        }
    }

    /// Whether mail to `host` goes straight there (a one-hop route).
    fn is_direct_neighbor(&self, host: &str) -> bool {
        self.db
            .get(host)
            .is_some_and(|e| e.route == format!("{host}!%s") || e.route == format!("%s@{host}"))
    }

    /// The cbosgd-example shortening: drop a leading hop only while the
    /// *next* hop is a direct neighbor, because then the mail reaches
    /// it first either way and the rest of the path stays relative to
    /// the same host. Anything more aggressive "cannot be safely
    /// transformed without making assumptions about host name
    /// uniqueness" — shortening `cbosgd!mcvax!piet` to `mcvax!piet`
    /// would re-resolve `mcvax` in the local name space.
    pub fn shorten(&self, text: &str) -> Result<String, RewriteError> {
        let addr = Address::parse(text, self.style)?;
        if self.preserve_loops && Self::has_loop(&addr) {
            return Ok(addr.to_bang_path());
        }
        let mut hops = addr.hops.as_slice();
        while hops.len() > 1 && self.is_direct_neighbor(&hops[1]) {
            hops = &hops[1..];
        }
        Ok(Address {
            hops: hops.to_vec(),
            user: addr.user.clone(),
        }
        .to_bang_path())
    }
}

fn tail_argument(hops: &[String], user: &str) -> String {
    if hops.is_empty() {
        user.to_string()
    } else {
        format!("{}!{}", hops.join("!"), user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RouteDb {
        RouteDb::from_output(
            "seismo\tseismo!%s\nduke\tduke!%s\nmcvax\tseismo!mcvax!%s\ncbosgd\tcbosgd!%s\n",
        )
        .unwrap()
    }

    #[test]
    fn first_hop_routes_and_keeps_tail() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::FirstHop);
        assert_eq!(
            rw.rewrite("seismo!mcvax!piet").unwrap(),
            "seismo!mcvax!piet"
        );
        assert_eq!(rw.rewrite("duke!fred").unwrap(), "duke!fred");
    }

    #[test]
    fn first_hop_unknown_fails() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::FirstHop);
        assert!(matches!(
            rw.rewrite("unknown!duke!u"),
            Err(RewriteError::NoRoute(_))
        ));
    }

    #[test]
    fn rightmost_known_saves_hops() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::RightmostKnown);
        // mcvax is known directly: skip the long prefix entirely.
        assert_eq!(rw.rewrite("a!b!c!mcvax!piet").unwrap(), "seismo!mcvax!piet");
    }

    #[test]
    fn rightmost_known_falls_back_leftward() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::RightmostKnown);
        assert_eq!(
            rw.rewrite("duke!nowhere!u").unwrap(),
            "duke!nowhere!u",
            "duke is the rightmost known host"
        );
    }

    #[test]
    fn off_passes_through() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::Off);
        assert_eq!(rw.rewrite("a!b!c!u").unwrap(), "a!b!c!u");
    }

    #[test]
    fn loop_tests_preserved() {
        let db = db();
        let rw = Rewriter::new(&db).policy(Policy::RightmostKnown);
        // seismo!duke!seismo!u is a loop test: hands off.
        assert_eq!(
            rw.rewrite("seismo!duke!seismo!u").unwrap(),
            "seismo!duke!seismo!u"
        );
        // Turning preservation off lets the optimizer collapse it.
        let aggressive = rw.preserve_loops(false);
        assert_eq!(
            aggressive.rewrite("seismo!duke!seismo!u").unwrap(),
            "seismo!u"
        );
    }

    #[test]
    fn local_user_untouched() {
        let db = db();
        let rw = Rewriter::new(&db);
        assert_eq!(rw.rewrite("honey").unwrap(), "honey");
    }

    #[test]
    fn domain_destination_via_suffix() {
        let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
        let rw = Rewriter::new(&db).policy(Policy::RightmostKnown);
        assert_eq!(
            rw.rewrite("pleasant@caip.rutgers.edu").unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
    }

    #[test]
    fn shorten_strips_known_prefix_only() {
        let db = db();
        let rw = Rewriter::new(&db);
        // The paper's example: relative to cbosgd the copy recipient is
        // cbosgd!seismo!mcvax!piet; seismo is a direct neighbor, so the
        // cbosgd hop can be dropped safely...
        assert_eq!(
            rw.shorten("cbosgd!seismo!mcvax!piet").unwrap(),
            "seismo!mcvax!piet"
        );
        // ...but no further: mcvax is known only *via seismo*, so
        // stripping seismo would re-resolve mcvax in the local name
        // space (the unsafe transformation the paper warns about).
        assert_eq!(
            rw.shorten("seismo!mcvax!piet").unwrap(),
            "seismo!mcvax!piet"
        );
        // cbosgd!mcvax!piet also keeps its prefix: mcvax is not a
        // direct neighbor here.
        assert_eq!(
            rw.shorten("cbosgd!mcvax!piet").unwrap(),
            "cbosgd!mcvax!piet",
            "cannot assume mcvax is globally unique"
        );
    }
}
