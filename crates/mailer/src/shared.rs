//! A cheaply-cloneable handle over a [`RouteDb`].
//!
//! Long-lived services — the route-query daemon in `pathalias-server`,
//! or a mailer embedded in a delivery agent — want many readers over
//! one immutable route table, with the whole table swapped atomically
//! on reload. [`SharedRouteDb`] is that handle: an `Arc` around a
//! frozen [`RouteDb`], so cloning is a reference-count bump and every
//! clone sees one consistent table. Derefs to [`RouteDb`], so the full
//! lookup API ([`RouteDb::lookup`], [`RouteDb::route_to`], ...) is
//! available on the handle.

use crate::routedb::RouteDb;
use std::ops::Deref;
use std::sync::Arc;

/// A shared, immutable route database.
///
/// # Examples
///
/// ```
/// use pathalias_mailer::{RouteDb, SharedRouteDb};
///
/// let db = RouteDb::from_output("seismo\tseismo!%s\n").unwrap();
/// let shared = SharedRouteDb::new(db);
/// let clone = shared.clone(); // reference-count bump, not a copy
/// assert_eq!(clone.route_to("seismo", "rick").unwrap(), "seismo!rick");
/// assert_eq!(shared.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedRouteDb {
    inner: Arc<RouteDb>,
}

impl SharedRouteDb {
    /// Freezes `db` into a shareable handle.
    pub fn new(db: RouteDb) -> SharedRouteDb {
        SharedRouteDb {
            inner: Arc::new(db),
        }
    }

    /// How many handles (including this one) share the table.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl From<RouteDb> for SharedRouteDb {
    fn from(db: RouteDb) -> SharedRouteDb {
        SharedRouteDb::new(db)
    }
}

impl Deref for SharedRouteDb {
    type Target = RouteDb;
    fn deref(&self) -> &RouteDb {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_table() {
        let db = RouteDb::from_output("a\ta!%s\nb\tb!%s\n").unwrap();
        let shared = SharedRouteDb::new(db);
        let clones: Vec<SharedRouteDb> = (0..10).map(|_| shared.clone()).collect();
        assert_eq!(shared.handle_count(), 11);
        for c in &clones {
            assert_eq!(c.len(), 2);
            assert_eq!(c.route_to("a", "u").unwrap(), "a!u");
        }
        drop(clones);
        assert_eq!(shared.handle_count(), 1);
    }

    #[test]
    fn usable_across_threads() {
        let shared =
            SharedRouteDb::new(RouteDb::from_output("hub\thub!%s\n.edu\thub!%s\n").unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = shared.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        assert_eq!(handle.route_to("hub", "u").unwrap(), "hub!u");
                        assert_eq!(
                            handle.route_to("caip.rutgers.edu", "u").unwrap(),
                            "hub!caip.rutgers.edu!u"
                        );
                    }
                });
            }
        });
    }
}
