//! Message-header processing.
//!
//! The paper closes with principles for keeping headers useful:
//!
//! 1. "Message headers should be modified only as necessary to conform
//!    to network standards."
//! 2. "Other message data should not be modified at all."
//! 3. "A host must not generate a return path that would be rejected if
//!    used."
//! 4. "Hosts that re-route mail from local users should show the
//!    modified routes in message headers."
//! 5. "Relays within a network should not modify routes, nor translate
//!    to foreign addressing styles."
//! 6. "Gateways should translate between addressing styles when
//!    providing gateway services."
//!
//! [`HeaderRewriter`] applies a [`Rewriter`] to the address-bearing
//! header fields only (1, 4), leaves everything else alone (2, 5), and
//! refuses to emit an address it cannot route (3). Style translation
//! for gateways (6) is [`crate::Address::to_mixed`] /
//! [`crate::Address::to_bang_path`].

use crate::rewrite::{RewriteError, Rewriter};
use std::fmt;

/// Header fields that carry addresses.
const ADDRESS_FIELDS: &[&str] = &["to", "cc", "bcc", "from", "reply-to"];

/// A parsed RFC822-shaped message: headers then a blank line then body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// `(field, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Everything after the first blank line, verbatim.
    pub body: String,
}

/// A malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "header line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for HeaderError {}

impl Message {
    /// Parses headers (with simple continuation-line folding) and body.
    pub fn parse(text: &str) -> Result<Message, HeaderError> {
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut lines = text.lines().enumerate();
        let mut body_start: Option<usize> = None;
        for (i, line) in lines.by_ref() {
            if line.is_empty() {
                body_start = Some(i + 1);
                break;
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                match headers.last_mut() {
                    Some((_, v)) => {
                        v.push(' ');
                        v.push_str(line.trim());
                    }
                    None => {
                        return Err(HeaderError {
                            line: i + 1,
                            msg: "continuation before any header".to_string(),
                        })
                    }
                }
                continue;
            }
            // The traditional `From ` envelope line.
            if i == 0 && line.starts_with("From ") {
                headers.push(("From ".to_string(), line[5..].to_string()));
                continue;
            }
            match line.split_once(':') {
                Some((field, value)) => {
                    headers.push((field.trim().to_string(), value.trim().to_string()))
                }
                None => {
                    return Err(HeaderError {
                        line: i + 1,
                        msg: format!("not a header field: `{line}`"),
                    })
                }
            }
        }
        let body = match body_start {
            Some(n) => text.lines().skip(n).collect::<Vec<_>>().join("\n"),
            None => String::new(),
        };
        Ok(Message { headers, body })
    }

    /// Renders the message back to text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (field, value) in &self.headers {
            if field == "From " {
                out.push_str(&format!("From {value}\n"));
            } else {
                out.push_str(&format!("{field}: {value}\n"));
            }
        }
        out.push('\n');
        out.push_str(&self.body);
        if !self.body.is_empty() && !self.body.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// The first value of a (case-insensitive) header field.
    pub fn get(&self, field: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(f, _)| f.eq_ignore_ascii_case(field))
            .map(|(_, v)| v.as_str())
    }
}

/// Applies a [`Rewriter`] to a message's address fields.
#[derive(Debug, Clone)]
pub struct HeaderRewriter<'db> {
    rewriter: Rewriter<'db>,
}

impl<'db> HeaderRewriter<'db> {
    /// Wraps a rewriter.
    pub fn new(rewriter: Rewriter<'db>) -> Self {
        HeaderRewriter { rewriter }
    }

    /// Rewrites the address-bearing headers of `msg`, leaving all other
    /// headers and the body untouched. Addresses that fail to rewrite
    /// are left as they were (principle 3 favours the original over a
    /// route we cannot stand behind); the error list reports them.
    pub fn rewrite_message(&self, msg: &Message) -> (Message, Vec<RewriteError>) {
        let mut errors = Vec::new();
        let headers = msg
            .headers
            .iter()
            .map(|(field, value)| {
                if ADDRESS_FIELDS.contains(&field.to_ascii_lowercase().as_str()) {
                    let rewritten = value
                        .split(',')
                        .map(|addr| {
                            let a = addr.trim();
                            match self.rewriter.rewrite(a) {
                                Ok(r) => r,
                                Err(e) => {
                                    errors.push(e);
                                    a.to_string()
                                }
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    (field.clone(), rewritten)
                } else {
                    (field.clone(), value.clone())
                }
            })
            .collect();
        (
            Message {
                headers,
                body: msg.body.clone(),
            },
            errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Policy;
    use crate::routedb::RouteDb;

    /// The paper's header example, as received on princeton.
    const PAPER_MESSAGE: &str = "\
From cbosgd!mark Sun Feb 9 13:14:58 EST 1986
To: princeton!honey
Cc: seismo!mcvax!piet
Subject: pathalias

nice work, guys.
";

    #[test]
    fn parse_and_render_roundtrip() {
        let m = Message::parse(PAPER_MESSAGE).unwrap();
        assert_eq!(m.get("To"), Some("princeton!honey"));
        assert_eq!(m.get("cc"), Some("seismo!mcvax!piet"));
        assert_eq!(
            m.get("From "),
            Some("cbosgd!mark Sun Feb 9 13:14:58 EST 1986")
        );
        assert_eq!(m.body, "nice work, guys.");
        assert_eq!(m.render(), PAPER_MESSAGE);
    }

    #[test]
    fn continuation_lines_fold() {
        let m = Message::parse("To: a!b,\n\tc!d\n\nbody\n").unwrap();
        assert_eq!(m.get("To"), Some("a!b, c!d"));
    }

    #[test]
    fn malformed_header_errors() {
        assert!(Message::parse("not a header\n\n").is_err());
        assert!(Message::parse("\tcontinuation first\n").is_err());
    }

    #[test]
    fn rewrites_only_address_fields() {
        let db =
            RouteDb::from_output("princeton\tprinceton!%s\nseismo\tseismo!%s\ncbosgd\tcbosgd!%s\n")
                .unwrap();
        let hw = HeaderRewriter::new(Rewriter::new(&db).policy(Policy::FirstHop));
        let m = Message::parse(PAPER_MESSAGE).unwrap();
        let (out, errors) = hw.rewrite_message(&m);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(out.get("To"), Some("princeton!honey"));
        assert_eq!(out.get("Cc"), Some("seismo!mcvax!piet"));
        // Subject and body untouched (principles 1 and 2).
        assert_eq!(out.get("Subject"), Some("pathalias"));
        assert_eq!(out.body, m.body);
    }

    #[test]
    fn failed_rewrites_keep_original_and_report() {
        let db = RouteDb::from_output("princeton\tprinceton!%s\n").unwrap();
        let hw = HeaderRewriter::new(Rewriter::new(&db).policy(Policy::FirstHop));
        let m = Message::parse("To: unknownhost!u\n\nhi\n").unwrap();
        let (out, errors) = hw.rewrite_message(&m);
        assert_eq!(out.get("To"), Some("unknownhost!u"));
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn address_lists_rewrite_element_wise() {
        let db = RouteDb::from_output("a\ta!%s\nb\tx!b!%s\n").unwrap();
        let hw = HeaderRewriter::new(Rewriter::new(&db).policy(Policy::FirstHop));
        let m = Message::parse("To: a!u, b!v\n\n.\n").unwrap();
        let (out, errors) = hw.rewrite_message(&m);
        assert!(errors.is_empty());
        assert_eq!(out.get("To"), Some("a!u, x!b!v"));
    }

    #[test]
    fn cbosgd_abbreviation_hazard() {
        // If cbosgd runs an aggressive optimizer, the Cc is abbreviated
        // to mcvax!piet; princeton then sees cbosgd!mcvax!piet, which
        // "cannot be safely transformed without making assumptions
        // about host name uniqueness".
        let cbosgd_db = RouteDb::from_output("seismo\tseismo!%s\nmcvax\tmcvax!%s\n").unwrap();
        let aggressive = Rewriter::new(&cbosgd_db).policy(Policy::RightmostKnown);
        let abbreviated = aggressive.rewrite("seismo!mcvax!piet").unwrap();
        assert_eq!(abbreviated, "mcvax!piet", "cbosgd knows mcvax directly");

        // princeton prepends the origin to build the reply path:
        let reply = format!("cbosgd!{abbreviated}");
        let princeton_db = RouteDb::from_output("cbosgd\tcbosgd!%s\nseismo\tseismo!%s\n").unwrap();
        let careful = Rewriter::new(&princeton_db);
        // The shortener must keep the cbosgd prefix: princeton cannot
        // assume its own mcvax (if any) is cbosgd's mcvax.
        assert_eq!(careful.shorten(&reply).unwrap(), "cbosgd!mcvax!piet");
    }
}
