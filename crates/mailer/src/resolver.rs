//! One lookup API over every backend.
//!
//! This repo grew three divergent ways to answer "route to host X":
//! [`RouteDb::lookup`] in memory, the PADB1 disk reader, and the
//! server's cached snapshot — each with its own signature and error
//! shape. [`Resolver`] is the one semantics they all implement: exact
//! name first, then progressively broader domain suffixes, then the
//! default route (the `.` entry, smail's "smart path" convention),
//! rendered with the paper's argument rule — an exact hit substitutes
//! the user, while suffix and default hits carry the full destination
//! ("the argument here is not [the user], it is
//! `caip.rutgers.edu!pleasant`").
//!
//! Backends in this crate: [`RouteDb`], [`SharedRouteDb`], and the
//! page-cache-backed [`MappedDb`](crate::disk::MappedDb). The serving
//! layer (`pathalias-server`) wraps any of them in a generation-stamped
//! cache that is itself a `Resolver`.

use crate::routedb::{MatchKind, RouteDb};
use crate::shared::SharedRouteDb;
use std::fmt;
use std::io;

/// How a resolution matched, in lookup-precedence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedVia {
    /// The host name matched an entry exactly.
    Exact,
    /// A domain suffix matched (`caip.rutgers.edu` found via `.edu`).
    DomainSuffix {
        /// The matching suffix entry name (with its leading dot).
        suffix: String,
    },
    /// The `.` default-route entry matched (nothing else did).
    DefaultRoute,
}

/// A successful resolution: the rendered route plus how it was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The complete route with the user argument substituted.
    pub route: String,
    /// The raw `printf`-style format string from the table (`%s`
    /// marker intact) — what a cache should keep, since it serves any
    /// user.
    pub format: String,
    /// How the match was found.
    pub via: ResolvedVia,
}

impl Resolution {
    /// Renders a resolution from a table format string: exact hits
    /// substitute the user; suffix and default hits carry the whole
    /// destination as `host!user`.
    pub fn render(format: &str, via: ResolvedVia, host: &str, user: &str) -> Resolution {
        let route = match via {
            ResolvedVia::Exact => format.replacen("%s", user, 1),
            ResolvedVia::DomainSuffix { .. } | ResolvedVia::DefaultRoute => {
                format.replacen("%s", &format!("{host}!{user}"), 1)
            }
        };
        Resolution {
            route,
            format: format.to_string(),
            via,
        }
    }
}

/// Why a resolution failed.
#[derive(Debug)]
pub enum ResolveError {
    /// The table has no route to the host — no exact entry, no domain
    /// suffix, no default route. The ordinary negative answer.
    NoRoute,
    /// A disk-backed table could not be read.
    Io(io::Error),
    /// A disk-backed table is structurally broken.
    Corrupt(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NoRoute => write!(f, "no route"),
            ResolveError::Io(e) => write!(f, "i/o error: {e}"),
            ResolveError::Corrupt(why) => write!(f, "corrupt route database: {why}"),
        }
    }
}

impl std::error::Error for ResolveError {}

impl From<io::Error> for ResolveError {
    fn from(e: io::Error) -> Self {
        ResolveError::Io(e)
    }
}

/// Outcome of [`Resolver::resolve_exact`], the optional cheap
/// exact-name-only probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactOutcome {
    /// The host matched an exact entry; here is the full resolution.
    Hit(Resolution),
    /// The backend cheaply determined there is no *exact* entry (a
    /// suffix or default route may still apply — the caller continues
    /// with the full lookup).
    MissExact,
    /// The backend has no probe cheaper than a full
    /// [`resolve`](Resolver::resolve) (e.g. disk-backed tables, where
    /// even an exact probe is a binary search worth caching).
    Unsupported,
}

/// The one lookup API over every backend.
///
/// # Examples
///
/// ```
/// use pathalias_mailer::{Resolution, ResolvedVia, Resolver, RouteDb};
///
/// let db = RouteDb::from_output(
///     "seismo\tseismo!%s\n.edu\tseismo!%s\n.\tgateway!%s\n",
/// ).unwrap();
///
/// // Exact hit: the argument is the user.
/// let hit = db.resolve("seismo", "rick").unwrap();
/// assert_eq!(hit.route, "seismo!rick");
/// assert_eq!(hit.via, ResolvedVia::Exact);
///
/// // Suffix hit: the argument carries the full destination.
/// let hit = db.resolve("caip.rutgers.edu", "pleasant").unwrap();
/// assert_eq!(hit.route, "seismo!caip.rutgers.edu!pleasant");
/// assert_eq!(hit.via, ResolvedVia::DomainSuffix { suffix: ".edu".into() });
///
/// // Default route: the `.` entry catches everything else.
/// let hit = db.resolve("mystery-host", "u").unwrap();
/// assert_eq!(hit.route, "gateway!mystery-host!u");
/// assert_eq!(hit.via, ResolvedVia::DefaultRoute);
/// ```
pub trait Resolver {
    /// Resolves mail for `user` at `host` to a complete route.
    ///
    /// Pass `"%s"` as `user` to get the format string back in rendered
    /// form (`replacen("%s", "%s", 1)` is the identity for exact hits).
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError>;

    /// Number of entries in the backing table (for health lines).
    fn entries(&self) -> usize;

    /// An exact-name-only probe for backends where that is cheaper
    /// than anything a caching layer could do — one lock-free hash
    /// probe for the in-memory tables. Decorators use it to keep
    /// exact-match traffic off their caches entirely. The default is
    /// [`ExactOutcome::Unsupported`]: "just do the full resolve".
    fn resolve_exact(&self, _host: &str, _user: &str) -> ExactOutcome {
        ExactOutcome::Unsupported
    }
}

impl<R: Resolver + ?Sized> Resolver for &R {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        (**self).resolve(host, user)
    }
    fn entries(&self) -> usize {
        (**self).entries()
    }
    fn resolve_exact(&self, host: &str, user: &str) -> ExactOutcome {
        (**self).resolve_exact(host, user)
    }
}

impl<R: Resolver + ?Sized> Resolver for Box<R> {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        (**self).resolve(host, user)
    }
    fn entries(&self) -> usize {
        (**self).entries()
    }
    fn resolve_exact(&self, host: &str, user: &str) -> ExactOutcome {
        (**self).resolve_exact(host, user)
    }
}

impl<R: Resolver + ?Sized> Resolver for std::sync::Arc<R> {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        (**self).resolve(host, user)
    }
    fn entries(&self) -> usize {
        (**self).entries()
    }
    fn resolve_exact(&self, host: &str, user: &str) -> ExactOutcome {
        (**self).resolve_exact(host, user)
    }
}

/// A resolver any thread can hold: the type the serving layer boxes
/// its backends into.
pub type BoxedResolver = Box<dyn Resolver + Send + Sync>;

impl Resolver for RouteDb {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        let hit = self.lookup(host).ok_or(ResolveError::NoRoute)?;
        let via = match hit.kind {
            MatchKind::Exact => ResolvedVia::Exact,
            MatchKind::DomainSuffix(suffix) => ResolvedVia::DomainSuffix { suffix },
            MatchKind::Default => ResolvedVia::DefaultRoute,
        };
        Ok(Resolution::render(&hit.entry.route, via, host, user))
    }

    fn entries(&self) -> usize {
        self.len()
    }

    fn resolve_exact(&self, host: &str, user: &str) -> ExactOutcome {
        match self.get(host) {
            Some(entry) => ExactOutcome::Hit(Resolution::render(
                &entry.route,
                ResolvedVia::Exact,
                host,
                user,
            )),
            None => ExactOutcome::MissExact,
        }
    }
}

impl Resolver for SharedRouteDb {
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        (**self).resolve(host, user)
    }
    fn entries(&self) -> usize {
        self.len()
    }
    fn resolve_exact(&self, host: &str, user: &str) -> ExactOutcome {
        (**self).resolve_exact(host, user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RouteDb {
        RouteDb::from_output(
            "seismo\tseismo!%s\n.edu\tseismo!%s\n\
             caip.rutgers.edu\tseismo!caip.rutgers.edu!%s\n.\tsmart!%s\n",
        )
        .unwrap()
    }

    #[test]
    fn routedb_resolves_all_three_tiers() {
        let db = db();
        let exact = db.resolve("caip.rutgers.edu", "pleasant").unwrap();
        assert_eq!(exact.via, ResolvedVia::Exact);
        assert_eq!(exact.route, "seismo!caip.rutgers.edu!pleasant");
        assert_eq!(exact.format, "seismo!caip.rutgers.edu!%s");

        let suffix = db.resolve("princeton.edu", "honey").unwrap();
        assert_eq!(
            suffix.via,
            ResolvedVia::DomainSuffix {
                suffix: ".edu".into()
            }
        );
        assert_eq!(suffix.route, "seismo!princeton.edu!honey");

        let default = db.resolve("mystery", "u").unwrap();
        assert_eq!(default.via, ResolvedVia::DefaultRoute);
        assert_eq!(default.route, "smart!mystery!u");
    }

    #[test]
    fn no_route_without_default() {
        let db = RouteDb::from_output("a\ta!%s\n").unwrap();
        assert!(matches!(
            db.resolve("nowhere", "u"),
            Err(ResolveError::NoRoute)
        ));
    }

    #[test]
    fn shared_and_boxed_delegate() {
        let shared = SharedRouteDb::new(db());
        assert_eq!(
            shared.resolve("seismo", "rick").unwrap().route,
            "seismo!rick"
        );
        assert_eq!(Resolver::entries(&shared), 4);

        let boxed: BoxedResolver = Box::new(shared.clone());
        assert_eq!(
            boxed.resolve("seismo", "rick").unwrap().route,
            "seismo!rick"
        );
        assert_eq!(boxed.entries(), 4);

        let arced = std::sync::Arc::new(db());
        assert_eq!(
            arced.resolve("seismo", "rick").unwrap().route,
            "seismo!rick"
        );
    }

    #[test]
    fn percent_s_user_round_trips_format() {
        let db = db();
        let hit = db.resolve("seismo", "%s").unwrap();
        assert_eq!(hit.route, hit.format);
    }

    #[test]
    fn resolution_matches_route_to() {
        // The trait must agree with the legacy RouteDb::route_to on
        // every name the old API answers.
        let db = db();
        for dest in ["seismo", "caip.rutgers.edu", "x.y.edu", "plainhost"] {
            let old = db.route_to(dest, "u").unwrap();
            let new = db.resolve(dest, "u").unwrap().route;
            assert_eq!(old, new, "divergence on {dest}");
        }
    }
}
