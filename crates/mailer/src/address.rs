//! Relative-address parsing.
//!
//! "It is widely acknowledged that no simple measures suffice for
//! disambiguating a route that contains both '@' and '!'. ... most
//! mailers rigidly adhere to 'UUCP syntax' or to 'RFC822 syntax'. As
//! such, they consistently make the wrong choice on selected inputs."
//!
//! An [`Address`] is normalized to *travel order*: the hosts the message
//! visits, in order, plus the user name delivered at the final hop.
//! The three [`SyntaxStyle`]s reproduce the mailer behaviours the paper
//! contrasts, including the Honeyman–Parseghian-style heuristic the
//! footnotes reference.

use std::fmt;

/// Which grammar wins when `!` and `@` are mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyntaxStyle {
    /// `!` binds first, left to right; `a!b!u@h` travels a, b, h.
    /// This is what the classic form `seismo!postel@f.isi.usc.edu`
    /// intends.
    UucpFirst,
    /// `@` binds first; `a!b!u@h` travels h, then a, then b — the
    /// RFC822-rigid reading the paper calls "the wrong choice on
    /// selected inputs".
    Rfc822First,
    /// Resolve like a gateway that has seen both worlds: a single
    /// rightmost `@` with a bang path on its left reads UUCP-first (the
    /// classic form); `%` in the local part routes right-to-left; pure
    /// forms parse as themselves.
    #[default]
    Heuristic,
}

/// An address parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrError {
    /// The address was empty or had an empty component.
    Empty,
    /// More than one `@` (outside the `%` convention).
    MultipleAt(String),
    /// The host side of `@` contained further routing the style cannot
    /// honour.
    HostSideRouting(String),
    /// The local side contained routing the style cannot honour.
    Unroutable(String),
}

impl fmt::Display for AddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrError::Empty => write!(f, "empty address or component"),
            AddrError::MultipleAt(a) => write!(f, "multiple `@` in `{a}`"),
            AddrError::HostSideRouting(a) => {
                write!(f, "routing on the host side of `@` in `{a}`")
            }
            AddrError::Unroutable(a) => write!(f, "cannot resolve routing in `{a}`"),
        }
    }
}

impl std::error::Error for AddrError {}

/// A parsed relative address in travel order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// Hosts visited, in order. The last hop is where `user` is
    /// delivered; an empty list means local delivery.
    pub hops: Vec<String>,
    /// The user (local part) delivered at the final hop.
    pub user: String,
}

impl Address {
    /// Parses `text` under the given precedence style.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathalias_mailer::{Address, SyntaxStyle};
    ///
    /// let a = Address::parse("seismo!mcvax!piet", SyntaxStyle::Heuristic).unwrap();
    /// assert_eq!(a.hops, vec!["seismo", "mcvax"]);
    /// assert_eq!(a.user, "piet");
    ///
    /// let classic = Address::parse("seismo!postel@f.isi.usc.edu", SyntaxStyle::UucpFirst).unwrap();
    /// assert_eq!(classic.hops, vec!["seismo", "f.isi.usc.edu"]);
    /// assert_eq!(classic.user, "postel");
    /// ```
    pub fn parse(text: &str, style: SyntaxStyle) -> Result<Address, AddrError> {
        if text.is_empty() {
            return Err(AddrError::Empty);
        }
        let at_count = text.matches('@').count();
        match style {
            SyntaxStyle::UucpFirst => Self::parse_uucp_first(text, at_count),
            SyntaxStyle::Rfc822First => Self::parse_rfc_first(text, at_count),
            SyntaxStyle::Heuristic => {
                // Pure forms parse as themselves; the mixed classic form
                // reads UUCP-first, which is what its writers meant.
                if at_count == 0 {
                    Self::parse_uucp_first(text, 0)
                } else {
                    Self::parse_rfc_like(text, true)
                }
            }
        }
    }

    /// Pure bang-path split; with `@` present, the `@`-segment must be
    /// the final one (`a!b!u@h`).
    fn parse_uucp_first(text: &str, at_count: usize) -> Result<Address, AddrError> {
        let parts: Vec<&str> = text.split('!').collect();
        if parts.iter().any(|p| p.is_empty()) {
            return Err(AddrError::Empty);
        }
        let (last, relays) = parts.split_last().expect("split never yields empty");
        if relays.iter().any(|r| r.contains('@')) {
            // `u@a!b`: a bang after an at is exactly the ambiguity the
            // mixed-syntax penalty avoids creating.
            return Err(AddrError::Unroutable(text.to_string()));
        }
        let mut hops: Vec<String> = relays.iter().map(|s| s.to_string()).collect();
        if at_count == 0 {
            if hops.is_empty() {
                // A bare word is a local user.
                return Ok(Address {
                    hops,
                    user: last.to_string(),
                });
            }
            return Ok(Address {
                hops,
                user: last.to_string(),
            });
        }
        // Final segment `u@h` (possibly with %-relays).
        let tail = Self::parse_rfc_like(last, false)?;
        hops.extend(tail.hops);
        Ok(Address {
            hops,
            user: tail.user,
        })
    }

    /// RFC822-first: the rightmost `@` binds; the local part may use
    /// `%` (right-to-left) or, when `allow_bang_local`, a bang path
    /// (travelled *after* the `@` host — the "wrong choice" reading
    /// only when the whole address came from a UUCP writer).
    fn parse_rfc_first(text: &str, at_count: usize) -> Result<Address, AddrError> {
        if at_count == 0 {
            // Rigid RFC822 mailers treat a bang path as an opaque local
            // part for the local host; that loses mail, so we parse the
            // bangs rather than reproduce the bug.
            return Self::parse_uucp_first(text, 0);
        }
        let (local, host) = text.rsplit_once('@').expect("at_count > 0");
        if local.is_empty() || host.is_empty() {
            return Err(AddrError::Empty);
        }
        if host.contains('!') || host.contains('%') {
            return Err(AddrError::HostSideRouting(text.to_string()));
        }
        if local.contains('@') {
            return Err(AddrError::MultipleAt(text.to_string()));
        }
        let mut hops = vec![host.to_string()];
        if local.contains('!') {
            // @ bound first: the bang path is travelled after host.
            let inner = Self::parse_uucp_first(local, 0)?;
            hops.extend(inner.hops);
            return Ok(Address {
                hops,
                user: inner.user,
            });
        }
        let mut percents: Vec<&str> = local.split('%').collect();
        if percents.iter().any(|p| p.is_empty()) {
            return Err(AddrError::Empty);
        }
        let user = percents.remove(0).to_string();
        // u%b%c@a travels a, then c, then b.
        hops.extend(percents.iter().rev().map(|s| s.to_string()));
        Ok(Address { hops, user })
    }

    /// Shared tail parser: `u@h`, `u%x@h`, or (heuristic) `a!b!u@h`.
    fn parse_rfc_like(text: &str, allow_bang_prefix: bool) -> Result<Address, AddrError> {
        let at_count = text.matches('@').count();
        if at_count == 0 {
            return Self::parse_uucp_first(text, 0);
        }
        if at_count > 1 {
            return Err(AddrError::MultipleAt(text.to_string()));
        }
        let (local, host) = text.rsplit_once('@').expect("one @");
        if local.is_empty() || host.is_empty() {
            return Err(AddrError::Empty);
        }
        if host.contains('!') || host.contains('%') {
            return Err(AddrError::HostSideRouting(text.to_string()));
        }
        if local.contains('!') {
            if !allow_bang_prefix {
                return Err(AddrError::Unroutable(text.to_string()));
            }
            // The classic form: bang path first, @ host last.
            let inner = Self::parse_uucp_first(local, 0)?;
            let mut hops = inner.hops;
            hops.push(host.to_string());
            return Ok(Address {
                hops,
                user: inner.user,
            });
        }
        let mut percents: Vec<&str> = local.split('%').collect();
        if percents.iter().any(|p| p.is_empty()) {
            return Err(AddrError::Empty);
        }
        let user = percents.remove(0).to_string();
        let mut hops = vec![host.to_string()];
        hops.extend(percents.iter().rev().map(|s| s.to_string()));
        Ok(Address { hops, user })
    }

    /// The host that finally delivers to the user, if any hop exists.
    pub fn final_host(&self) -> Option<&str> {
        self.hops.last().map(|s| s.as_str())
    }

    /// Renders as a pure UUCP bang path (`a!b!user`) — the relative
    /// form every UUCP host accepts.
    pub fn to_bang_path(&self) -> String {
        if self.hops.is_empty() {
            return self.user.clone();
        }
        format!("{}!{}", self.hops.join("!"), self.user)
    }

    /// Renders in gateway style: bang path to the final hop, user on
    /// the right of `@` (`a!b!%s@h` without the marker) — how a gateway
    /// "translates between addressing styles".
    pub fn to_mixed(&self) -> String {
        match self.hops.split_last() {
            None => self.user.clone(),
            Some((host, [])) => format!("{}@{}", self.user, host),
            Some((host, relays)) => {
                format!("{}!{}@{}", relays.join("!"), self.user, host)
            }
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bang_path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, st: SyntaxStyle) -> Address {
        Address::parse(s, st).unwrap()
    }

    #[test]
    fn pure_bang_path() {
        for st in [
            SyntaxStyle::UucpFirst,
            SyntaxStyle::Rfc822First,
            SyntaxStyle::Heuristic,
        ] {
            let a = parse("hosta!hostb!user", st);
            assert_eq!(a.hops, vec!["hosta", "hostb"]);
            assert_eq!(a.user, "user");
        }
    }

    #[test]
    fn pure_rfc822() {
        for st in [
            SyntaxStyle::UucpFirst,
            SyntaxStyle::Rfc822First,
            SyntaxStyle::Heuristic,
        ] {
            let a = parse("user@host", st);
            assert_eq!(a.hops, vec!["host"]);
            assert_eq!(a.user, "user");
        }
    }

    #[test]
    fn bare_user_is_local() {
        let a = parse("honey", SyntaxStyle::Heuristic);
        assert!(a.hops.is_empty());
        assert_eq!(a.user, "honey");
        assert!(a.final_host().is_none());
    }

    #[test]
    fn underground_percent_syntax() {
        // "member hosts stretch the rules with underground syntax:
        // user%host@relay"
        let a = parse("user%host@relay", SyntaxStyle::Heuristic);
        assert_eq!(a.hops, vec!["relay", "host"]);
        assert_eq!(a.user, "user");

        let a = parse("u%b%c@a", SyntaxStyle::Rfc822First);
        assert_eq!(a.hops, vec!["a", "c", "b"], "percent routes right to left");
    }

    #[test]
    fn classic_mixed_form_diverges_by_style() {
        let s = "seismo!postel@f.isi.usc.edu";
        let uucp = parse(s, SyntaxStyle::UucpFirst);
        assert_eq!(uucp.hops, vec!["seismo", "f.isi.usc.edu"]);
        assert_eq!(uucp.user, "postel");

        let rfc = parse(s, SyntaxStyle::Rfc822First);
        assert_eq!(
            rfc.hops,
            vec!["f.isi.usc.edu", "seismo"],
            "the rigid RFC822 reading travels the @ host first — the wrong choice"
        );

        let heur = parse(s, SyntaxStyle::Heuristic);
        assert_eq!(heur, uucp, "the heuristic honours the writer's intent");
    }

    #[test]
    fn merged_domain_form() {
        // "it is now permissible to use seismo!f.isi.usc.edu!postel"
        let a = parse("seismo!f.isi.usc.edu!postel", SyntaxStyle::Heuristic);
        assert_eq!(a.hops, vec!["seismo", "f.isi.usc.edu"]);
        assert_eq!(a.user, "postel");
    }

    #[test]
    fn renderings() {
        let a = parse("a!b!u@h", SyntaxStyle::Heuristic);
        assert_eq!(a.to_bang_path(), "a!b!h!u");
        assert_eq!(a.to_mixed(), "a!b!u@h");
        assert_eq!(a.to_string(), "a!b!h!u");
        let local = parse("just-user", SyntaxStyle::Heuristic);
        assert_eq!(local.to_bang_path(), "just-user");
        assert_eq!(local.to_mixed(), "just-user");
        let one = parse("u@h", SyntaxStyle::Heuristic);
        assert_eq!(one.to_mixed(), "u@h");
        assert_eq!(one.to_bang_path(), "h!u");
    }

    #[test]
    fn errors() {
        assert_eq!(
            Address::parse("", SyntaxStyle::Heuristic),
            Err(AddrError::Empty)
        );
        assert!(Address::parse("a!!b", SyntaxStyle::Heuristic).is_err());
        assert!(Address::parse("u@@h", SyntaxStyle::Heuristic).is_err());
        assert!(matches!(
            Address::parse("u@a!b", SyntaxStyle::Rfc822First),
            Err(AddrError::HostSideRouting(_))
        ));
        assert!(matches!(
            Address::parse("a!u@h@g", SyntaxStyle::Heuristic),
            Err(AddrError::MultipleAt(_))
        ));
        assert!(matches!(
            Address::parse("u@a!b!c", SyntaxStyle::UucpFirst),
            Err(AddrError::Unroutable(_))
        ));
    }

    #[test]
    fn roundtrip_bang_path() {
        let a = parse("a!b!c!user", SyntaxStyle::Heuristic);
        let b = parse(&a.to_bang_path(), SyntaxStyle::Heuristic);
        assert_eq!(a, b);
    }
}
