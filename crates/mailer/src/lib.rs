//! Mailer integration: using pathalias output to route real mail.
//!
//! The paper's INTEGRATING PATHALIAS WITH MAILERS section describes the
//! pieces a site needed around the route database; this crate implements
//! all of them:
//!
//! * [`RouteDb`] — the route database: parses pathalias output ("a
//!   simple linear file, in the UNIX tradition") and implements the
//!   paper's lookup algorithm, including the domain-suffix search where
//!   the argument for a domain gateway "is a route relative to its
//!   gateway" (`caip.rutgers.edu!pleasant` through `.edu`);
//! * [`Address`] — relative-address parsing across syntax styles: UUCP
//!   bang paths, RFC822 `user@host`, the "underground"
//!   `user%host@relay`, and mixed forms under UUCP-first, RFC822-first,
//!   or heuristic precedence;
//! * [`Rewriter`] — the policy choices the paper weighs: first-hop
//!   routing vs searching for "the rightmost host known to its
//!   database", loop-test preservation, and the safe-shortening hazard
//!   of the cbosgd example;
//! * [`Message`] / [`HeaderRewriter`] — header processing following the
//!   paper's six principles (modify only as necessary, never touch the
//!   body, never emit a return path you would reject, ...);
//! * [`Resolver`] — the one lookup API every backend implements:
//!   exact / domain-suffix / default-route resolution over [`RouteDb`],
//!   [`SharedRouteDb`], and the page-cache-backed
//!   [`disk::MappedDb`] (PADB1 served without a full load).
//!
//! # Examples
//!
//! ```
//! use pathalias_mailer::{Policy, RouteDb, Rewriter, SyntaxStyle};
//!
//! let db = RouteDb::from_output("seismo\tseismo!%s\nduke\tduke!%s\n").unwrap();
//! let rw = Rewriter::new(&db)
//!     .policy(Policy::FirstHop)
//!     .style(SyntaxStyle::UucpFirst);
//! assert_eq!(rw.rewrite("seismo!mcvax!piet").unwrap(), "seismo!mcvax!piet");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
pub mod disk;
mod header;
mod resolver;
mod rewrite;
mod routedb;
mod shared;

pub use address::{AddrError, Address, SyntaxStyle};
pub use header::{HeaderRewriter, Message};
pub use resolver::{BoxedResolver, ExactOutcome, Resolution, ResolveError, ResolvedVia, Resolver};
pub use rewrite::{Policy, RewriteError, Rewriter};
pub use routedb::{DbEntry, DbError, Lookup, MatchKind, RouteDb};
pub use shared::SharedRouteDb;
