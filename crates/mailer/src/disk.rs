//! The on-disk route database.
//!
//! The paper: "output from pathalias is a simple linear file, in the
//! UNIX tradition. If desired, a separate program may be used to
//! convert this file into a format appropriate for rapid database
//! retrieval." On V7 that program fed dbm; here the same role is played
//! by a small sorted-table file format with binary-search lookups that
//! read only the index and the matching entry:
//!
//! ```text
//! magic  "PADB1\n"
//! count  <n>\n
//! index  n lines of: <name-offset> <name-len> <route-offset> <route-len>\n
//! blob   names then routes, back to back, sorted by name
//! ```
//!
//! Everything is text offsets into one blob, so the file is portable,
//! inspectable with a pager, and immune to endianness.

use crate::resolver::{Resolution, ResolveError, ResolvedVia, Resolver};
use crate::routedb::{DbEntry, RouteDb};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &str = "PADB1";

/// Errors from reading or writing the disk format.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PADB1 database or is structurally broken.
    Corrupt(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "i/o error: {e}"),
            DiskError::Corrupt(why) => write!(f, "corrupt route database: {why}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// Writes a [`RouteDb`] to `path` in the PADB1 format.
pub fn write_db(db: &RouteDb, path: impl AsRef<Path>) -> Result<(), DiskError> {
    let mut entries: Vec<&DbEntry> = db.iter().collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));

    let mut index_lines = Vec::with_capacity(entries.len());
    let mut blob = String::new();
    for e in &entries {
        let name_off = blob.len();
        blob.push_str(&e.name);
        let route_off = blob.len();
        blob.push_str(&e.route);
        index_lines.push(format!(
            "{name_off} {} {route_off} {}\n",
            e.name.len(),
            e.route.len()
        ));
    }

    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "{}", entries.len())?;
    for line in &index_lines {
        out.write_all(line.as_bytes())?;
    }
    out.write_all(blob.as_bytes())?;
    out.flush()?;
    Ok(())
}

/// A reader over a PADB1 file. The index is held in memory (a few
/// numbers per host); names and routes are fetched from disk on demand
/// with binary search — "rapid database retrieval".
#[derive(Debug)]
pub struct DiskDb {
    file: File,
    /// (name_off, name_len, route_off, route_len) sorted by name.
    index: Vec<(u64, u32, u64, u32)>,
    /// Offset of the blob within the file.
    blob_start: u64,
}

/// One index entry: (name_off, name_len, route_off, route_len).
type IndexEntry = (u64, u32, u64, u32);

/// The parsed skeleton of a PADB1 file: the open handle, the in-memory
/// index, and where the blob begins. Shared by the seekable
/// [`DiskDb`] and the shared-handle [`MappedDb`].
fn open_index(path: &Path) -> Result<(File, Vec<IndexEntry>, u64), DiskError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();

    reader.read_line(&mut line)?;
    if line.trim_end() != MAGIC {
        return Err(DiskError::Corrupt(format!(
            "bad magic `{}`",
            line.trim_end()
        )));
    }
    line.clear();
    reader.read_line(&mut line)?;
    let count: usize = line
        .trim_end()
        .parse()
        .map_err(|_| DiskError::Corrupt(format!("bad count `{}`", line.trim_end())))?;

    // Each index line is at least 8 bytes ("0 0 0 0\n"), so a count
    // exceeding the file size is corrupt — and would otherwise ask
    // for an absurd allocation below.
    let file_len = reader.get_ref().metadata()?.len();
    if count as u64 > file_len / 8 {
        return Err(DiskError::Corrupt(format!(
            "count {count} impossible for a {file_len}-byte file"
        )));
    }

    let mut index = Vec::with_capacity(count);
    for i in 0..count {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(DiskError::Corrupt(format!("index truncated at {i}")));
        }
        let mut parts = line.split_whitespace();
        let parse_u64 = |p: Option<&str>| -> Result<u64, DiskError> {
            p.and_then(|s| s.parse().ok())
                .ok_or_else(|| DiskError::Corrupt(format!("bad index line {i}")))
        };
        let name_off = parse_u64(parts.next())?;
        let name_len = parse_u64(parts.next())? as u32;
        let route_off = parse_u64(parts.next())?;
        let route_len = parse_u64(parts.next())? as u32;
        index.push((name_off, name_len, route_off, route_len));
    }
    let blob_start = reader.stream_position()?;

    // Every span the index names must land inside the blob;
    // otherwise lookups would read garbage (or, before this check,
    // fail with a misleading I/O error on a truncated file).
    let blob_len = file_len.saturating_sub(blob_start);
    for (i, &(name_off, name_len, route_off, route_len)) in index.iter().enumerate() {
        let name_end = name_off.checked_add(name_len as u64);
        let route_end = route_off.checked_add(route_len as u64);
        match (name_end, route_end) {
            (Some(n), Some(r)) if n <= blob_len && r <= blob_len => {}
            _ => {
                return Err(DiskError::Corrupt(format!(
                    "index entry {i} points outside the {blob_len}-byte blob"
                )));
            }
        }
    }

    Ok((reader.into_inner(), index, blob_start))
}

impl DiskDb {
    /// Opens a PADB1 file and loads its index.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskDb, DiskError> {
        let (file, index, blob_start) = open_index(path.as_ref())?;
        Ok(DiskDb {
            file,
            index,
            blob_start,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn read_span(&mut self, off: u64, len: u32) -> Result<String, DiskError> {
        self.file.seek(SeekFrom::Start(self.blob_start + off))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                // The file shrank after open (or open-time validation
                // was bypassed): structural, not environmental.
                DiskError::Corrupt("blob truncated".to_string())
            } else {
                DiskError::Io(e)
            }
        })?;
        String::from_utf8(buf).map_err(|_| DiskError::Corrupt("non-UTF-8 entry".to_string()))
    }

    fn name_at(&mut self, i: usize) -> Result<String, DiskError> {
        let (off, len, _, _) = self.index[i];
        self.read_span(off, len)
    }

    fn route_at(&mut self, i: usize) -> Result<String, DiskError> {
        let (_, _, off, len) = self.index[i];
        self.read_span(off, len)
    }

    /// Binary-searches for an exact host name, returning its route
    /// format string.
    pub fn get(&mut self, name: &str) -> Result<Option<String>, DiskError> {
        let mut lo = 0usize;
        let mut hi = self.index.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mid_name = self.name_at(mid)?;
            match mid_name.as_str().cmp(name) {
                std::cmp::Ordering::Equal => return Ok(Some(self.route_at(mid)?)),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(None)
    }

    /// Reads every entry into memory (blob read once, sequentially),
    /// e.g. to seed an in-memory [`RouteDb`] for a serving process.
    ///
    /// Costs are not stored in PADB1, so entries come back costless.
    pub fn read_all(&mut self) -> Result<Vec<DbEntry>, DiskError> {
        self.file.seek(SeekFrom::Start(self.blob_start))?;
        let mut blob = Vec::new();
        self.file.read_to_end(&mut blob)?;
        let blob = String::from_utf8(blob)
            .map_err(|_| DiskError::Corrupt("non-UTF-8 blob".to_string()))?;
        let span = |off: u64, len: u32, what: &str| -> Result<String, DiskError> {
            blob.get(off as usize..off as usize + len as usize)
                .map(str::to_string)
                .ok_or_else(|| DiskError::Corrupt(format!("{what} span splits a UTF-8 character")))
        };
        self.index
            .iter()
            .map(|&(name_off, name_len, route_off, route_len)| {
                Ok(DbEntry {
                    name: span(name_off, name_len, "name")?,
                    route: span(route_off, route_len, "route")?,
                    cost: None,
                })
            })
            .collect()
    }

    /// The paper's full mailer lookup against the disk file: exact
    /// match first, then domain suffixes, then the `.` default route;
    /// suffix and default arguments carry the whole destination.
    pub fn route_to(&mut self, dest: &str, user: &str) -> Result<Option<String>, DiskError> {
        if let Some(route) = self.get(dest)? {
            return Ok(Some(route.replacen("%s", user, 1)));
        }
        let mut rest = dest;
        while let Some(dot) = rest.find('.') {
            let suffix = &rest[dot..];
            if suffix.len() > 1 {
                if let Some(route) = self.get(suffix)? {
                    let arg = format!("{dest}!{user}");
                    return Ok(Some(route.replacen("%s", &arg, 1)));
                }
            }
            rest = &rest[dot + 1..];
        }
        if let Some(route) = self.get(".")? {
            let arg = format!("{dest}!{user}");
            return Ok(Some(route.replacen("%s", &arg, 1)));
        }
        Ok(None)
    }
}

/// The shared, read-only serving mode over a PADB1 file: the disk
/// equivalent of mmap, built entirely on safe std.
///
/// Where [`DiskDb`] owns a seek position (and therefore needs `&mut
/// self`), `MappedDb` issues *positioned* reads (`pread` on Unix,
/// `seek_read` on Windows) against a shared file handle, so any number
/// of threads can resolve concurrently through one `&MappedDb` with no
/// lock and no full table load. The kernel's page cache plays the role
/// the mapped pages would: only the index (a few numbers per host) is
/// held in memory, the blob pages fault in on demand and stay cached,
/// and a table larger than memory serves fine — exactly the "rapid
/// database retrieval" the paper delegates to "a separate program",
/// grown to serving scale.
///
/// This type is `Send + Sync` and implements [`Resolver`], so the
/// serving layer can put it behind the same cache decorator as the
/// in-memory backends.
///
/// # Examples
///
/// ```
/// use pathalias_mailer::{disk, Resolver, RouteDb};
///
/// let path = std::env::temp_dir().join(format!("mapped-doc-{}.padb", std::process::id()));
/// let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
/// disk::write_db(&db, &path).unwrap();
///
/// let mapped = disk::MappedDb::open(&path).unwrap();
/// assert_eq!(
///     mapped.resolve("caip.rutgers.edu", "pleasant").unwrap().route,
///     "seismo!caip.rutgers.edu!pleasant",
/// );
/// std::fs::remove_file(path).unwrap();
/// ```
#[derive(Debug)]
pub struct MappedDb {
    file: File,
    /// (name_off, name_len, route_off, route_len) sorted by name.
    index: Vec<(u64, u32, u64, u32)>,
    /// Offset of the blob within the file.
    blob_start: u64,
}

/// One positioned read, leaving the handle's seek position alone so
/// concurrent readers never race. Unix `pread` / Windows `seek_read`;
/// both are `&File` operations.
fn read_exact_at(file: &File, mut buf: &mut [u8], mut off: u64) -> io::Result<()> {
    while !buf.is_empty() {
        #[cfg(unix)]
        let n = std::os::unix::fs::FileExt::read_at(file, buf, off)?;
        #[cfg(windows)]
        let n = std::os::windows::fs::FileExt::seek_read(file, buf, off)?;
        #[cfg(not(any(unix, windows)))]
        compile_error!("MappedDb needs positioned reads (unix pread / windows seek_read)");
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "blob truncated",
            ));
        }
        buf = &mut buf[n..];
        off += n as u64;
    }
    Ok(())
}

impl MappedDb {
    /// Opens a PADB1 file for shared read-only serving. Validation is
    /// identical to [`DiskDb::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<MappedDb, DiskError> {
        let (file, index, blob_start) = open_index(path.as_ref())?;
        Ok(MappedDb {
            file,
            index,
            blob_start,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn read_span(&self, off: u64, len: u32) -> Result<String, DiskError> {
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&self.file, &mut buf, self.blob_start + off).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                // The file shrank after open (open-time validation
                // covered the original length): structural, not
                // environmental.
                DiskError::Corrupt("blob truncated".to_string())
            } else {
                DiskError::Io(e)
            }
        })?;
        String::from_utf8(buf).map_err(|_| DiskError::Corrupt("non-UTF-8 entry".to_string()))
    }

    /// Binary-searches for an exact name, returning its route format
    /// string. `&self`: safe to call from many threads at once.
    pub fn get(&self, name: &str) -> Result<Option<String>, DiskError> {
        let mut lo = 0usize;
        let mut hi = self.index.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (off, len, _, _) = self.index[mid];
            let mid_name = self.read_span(off, len)?;
            match mid_name.as_str().cmp(name) {
                std::cmp::Ordering::Equal => {
                    let (_, _, route_off, route_len) = self.index[mid];
                    return Ok(Some(self.read_span(route_off, route_len)?));
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(None)
    }
}

impl Resolver for MappedDb {
    /// The full three-tier lookup — exact, domain suffixes, `.`
    /// default — each tier one binary search over the on-disk table.
    fn resolve(&self, host: &str, user: &str) -> Result<Resolution, ResolveError> {
        let to_resolve_err = |e: DiskError| match e {
            DiskError::Io(e) => ResolveError::Io(e),
            DiskError::Corrupt(why) => ResolveError::Corrupt(why),
        };
        if let Some(format) = self.get(host).map_err(to_resolve_err)? {
            return Ok(Resolution::render(&format, ResolvedVia::Exact, host, user));
        }
        let mut rest = host;
        while let Some(dot) = rest.find('.') {
            let suffix = &rest[dot..];
            if suffix.len() > 1 {
                if let Some(format) = self.get(suffix).map_err(to_resolve_err)? {
                    return Ok(Resolution::render(
                        &format,
                        ResolvedVia::DomainSuffix {
                            suffix: suffix.to_string(),
                        },
                        host,
                        user,
                    ));
                }
            }
            rest = &rest[dot + 1..];
        }
        if let Some(format) = self.get(".").map_err(to_resolve_err)? {
            return Ok(Resolution::render(
                &format,
                ResolvedVia::DefaultRoute,
                host,
                user,
            ));
        }
        Err(ResolveError::NoRoute)
    }

    fn entries(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pathalias-diskdb-{tag}-{}", std::process::id()));
        p
    }

    fn sample_db() -> RouteDb {
        RouteDb::from_output(
            "seismo\tseismo!%s\nduke\tduke!%s\n.edu\tseismo!%s\nmit-ai\ta!%s@mit-ai\n",
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_and_lookup() {
        let path = temp_path("roundtrip");
        write_db(&sample_db(), &path).unwrap();
        let mut db = DiskDb::open(&path).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.get("duke").unwrap().as_deref(), Some("duke!%s"));
        assert_eq!(db.get("seismo").unwrap().as_deref(), Some("seismo!%s"));
        assert_eq!(db.get("mit-ai").unwrap().as_deref(), Some("a!%s@mit-ai"));
        assert_eq!(db.get("absent").unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn suffix_lookup_matches_in_memory() {
        let path = temp_path("suffix");
        write_db(&sample_db(), &path).unwrap();
        let mut db = DiskDb::open(&path).unwrap();
        assert_eq!(
            db.route_to("caip.rutgers.edu", "pleasant")
                .unwrap()
                .unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
        assert_eq!(db.route_to("duke", "fred").unwrap().unwrap(), "duke!fred");
        assert_eq!(db.route_to("nowhere", "u").unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn every_entry_findable() {
        let mut entries = String::new();
        for i in 0..500 {
            entries.push_str(&format!("host{i:03}\trelay!host{i:03}!%s\n"));
        }
        let db = RouteDb::from_output(&entries).unwrap();
        let path = temp_path("many");
        write_db(&db, &path).unwrap();
        let mut disk = DiskDb::open(&path).unwrap();
        for i in 0..500 {
            let name = format!("host{i:03}");
            assert_eq!(
                disk.get(&name).unwrap().unwrap(),
                format!("relay!host{i:03}!%s")
            );
        }
        assert!(disk.get("host999").unwrap().is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_db() {
        let path = temp_path("empty");
        write_db(&RouteDb::from_output("").unwrap(), &path).unwrap();
        let mut db = DiskDb::open(&path).unwrap();
        assert!(db.is_empty());
        assert!(db.get("anything").unwrap().is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, "NOTADB\n0\n").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_truncated_index() {
        let path = temp_path("trunc");
        std::fs::write(&path, "PADB1\n3\n0 4 4 6\n").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage_count() {
        let path = temp_path("count");
        std::fs::write(&path, "PADB1\nmany\n").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_absurd_count_without_allocating() {
        let path = temp_path("absurd-count");
        std::fs::write(&path, "PADB1\n18446744073709551615\n").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_truncated_blob_at_open() {
        // Write a valid file, then chop bytes off the blob. Every
        // truncation length must yield Corrupt at open — never a panic,
        // a bare I/O error, or a silently short database.
        let path = temp_path("trunc-blob");
        write_db(&sample_db(), &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let blob_len: usize = sample_db()
            .iter()
            .map(|e| e.name.len() + e.route.len())
            .sum();
        for cut in 1..=blob_len {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            match DiskDb::open(&path) {
                Err(DiskError::Corrupt(_)) => {}
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_index_pointing_outside_blob() {
        let path = temp_path("oob-index");
        // Offsets far beyond the 8-byte blob ("abcx!%s" + 1).
        std::fs::write(&path, "PADB1\n1\n500 4 504 6\nabcdefgh").unwrap();
        assert!(matches!(DiskDb::open(&path), Err(DiskError::Corrupt(_))));
        // Offset+len overflowing u64 must not wrap around the check.
        let path2 = temp_path("oob-overflow");
        std::fs::write(&path2, "PADB1\n1\n18446744073709551615 4 0 4\nabcdefgh").unwrap();
        assert!(matches!(DiskDb::open(&path2), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(path2).unwrap();
    }

    #[test]
    fn rejects_non_utf8_blob() {
        let path = temp_path("non-utf8");
        let mut bytes = b"PADB1\n1\n0 4 4 6\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc, b'a', b'!', b'%', b's', b'x', b'y']);
        std::fs::write(&path, &bytes).unwrap();
        let mut db = DiskDb::open(&path).unwrap();
        assert!(matches!(db.get("anything"), Err(DiskError::Corrupt(_))));
        assert!(matches!(db.read_all(), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn read_all_round_trips() {
        let path = temp_path("read-all");
        let original = sample_db();
        write_db(&original, &path).unwrap();
        let mut disk = DiskDb::open(&path).unwrap();
        let entries = disk.read_all().unwrap();
        assert_eq!(entries.len(), original.len());
        let rebuilt = RouteDb::from_entries(entries);
        for e in original.iter() {
            assert_eq!(rebuilt.get(&e.name).unwrap().route, e.route);
        }
        assert_eq!(
            rebuilt.route_to("caip.rutgers.edu", "pleasant").unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mapped_db_matches_diskdb_and_routedb() {
        let path = temp_path("mapped-parity");
        let db = sample_db();
        write_db(&db, &path).unwrap();
        let mapped = MappedDb::open(&path).unwrap();
        let mut disk = DiskDb::open(&path).unwrap();
        assert_eq!(mapped.len(), disk.len());
        // Every name the in-memory lookup answers, the mapped reader
        // must answer identically — including suffix hits and misses.
        for dest in [
            "seismo",
            "duke",
            "mit-ai",
            "caip.rutgers.edu",
            "x.y.edu",
            "nowhere",
        ] {
            let want = db.route_to(dest, "u");
            let via_disk = disk.route_to(dest, "u").unwrap();
            let via_mapped = match mapped.resolve(dest, "u") {
                Ok(r) => Some(r.route),
                Err(ResolveError::NoRoute) => None,
                Err(e) => panic!("mapped resolve failed on {dest}: {e}"),
            };
            assert_eq!(via_mapped, want, "mapped vs routedb on {dest}");
            assert_eq!(via_disk, want, "diskdb vs routedb on {dest}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mapped_db_serves_default_route() {
        let path = temp_path("mapped-default");
        let db = RouteDb::from_output(".edu\tgw!%s\n.\tsmart!%s\nhub\thub!%s\n").unwrap();
        write_db(&db, &path).unwrap();
        let mapped = MappedDb::open(&path).unwrap();
        let hit = mapped.resolve("unknown-host", "u").unwrap();
        assert_eq!(hit.via, ResolvedVia::DefaultRoute);
        assert_eq!(hit.route, "smart!unknown-host!u");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mapped_db_concurrent_readers() {
        // The whole point of MappedDb: many threads, one handle, no
        // locks, no &mut. 8 threads × 1000 lookups with full parity.
        let mut entries = String::new();
        for i in 0..300 {
            entries.push_str(&format!("host{i:03}\trelay!host{i:03}!%s\n"));
        }
        entries.push_str(".edu\tgw!%s\n");
        let db = RouteDb::from_output(&entries).unwrap();
        let path = temp_path("mapped-concurrent");
        write_db(&db, &path).unwrap();
        let mapped = MappedDb::open(&path).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let mapped = &mapped;
                s.spawn(move || {
                    for i in 0..1_000 {
                        let n = (t * 131 + i) % 300;
                        let host = format!("host{n:03}");
                        let got = mapped.resolve(&host, "u").unwrap();
                        assert_eq!(got.route, format!("relay!host{n:03}!u"));
                        assert_eq!(
                            mapped.resolve("a.b.edu", "u").unwrap().route,
                            "gw!a.b.edu!u"
                        );
                        assert!(matches!(
                            mapped.resolve("missing", "u"),
                            Err(ResolveError::NoRoute)
                        ));
                    }
                });
            }
        });
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mapped_db_rejects_corrupt_files() {
        let path = temp_path("mapped-corrupt");
        std::fs::write(&path, "NOTADB\n0\n").unwrap();
        assert!(matches!(MappedDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::write(&path, "PADB1\n1\n500 4 504 6\nabcdefgh").unwrap();
        assert!(matches!(MappedDb::open(&path), Err(DiskError::Corrupt(_))));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn random_garbage_never_panics() {
        // A deterministic splatter of junk files: open() must always
        // return Ok or Err, never panic or over-allocate.
        let path = temp_path("garbage");
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..200 {
            let len = (next() % 200) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            if case % 3 == 0 {
                // Bias toward a valid header so the index parser runs.
                let mut with_magic = b"PADB1\n3\n".to_vec();
                with_magic.append(&mut bytes);
                bytes = with_magic;
            }
            std::fs::write(&path, &bytes).unwrap();
            let _ = DiskDb::open(&path);
        }
        std::fs::remove_file(path).unwrap();
    }
}
