//! The route database.
//!
//! "Output from pathalias is a simple linear file, in the UNIX
//! tradition. If desired, a separate program may be used to convert
//! this file into a format appropriate for rapid database retrieval."
//! [`RouteDb`] is that separate program as a library: it ingests the
//! linear file (or a [`RouteTable`] directly) and serves the lookup
//! algorithm the paper specifies for mailers, including the
//! domain-suffix search.
//!
//! [`RouteTable`]: pathalias_core::RouteTable

use pathalias_core::{Cost, RouteTable};
use std::collections::HashMap;
use std::fmt;

/// A database entry: one visible pathalias output line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbEntry {
    /// Host or domain name (domains begin with `.`).
    pub name: String,
    /// The `printf`-style route; `%s` marks the argument position.
    pub route: String,
    /// The path cost, when the output included costs.
    pub cost: Option<Cost>,
}

/// How a lookup matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchKind {
    /// The name matched an entry exactly.
    Exact,
    /// A domain suffix matched (`caip.rutgers.edu` found via `.edu`);
    /// the argument must carry the full destination.
    DomainSuffix(String),
    /// The `.` default-route entry matched (smail's "smart path"
    /// convention: a bare-dot entry catches everything the table does
    /// not know); the argument carries the full destination.
    Default,
}

/// A successful lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup<'a> {
    /// The matching entry.
    pub entry: &'a DbEntry,
    /// How it matched.
    pub kind: MatchKind,
}

/// Errors from loading a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A line was not `name<TAB>route` or `cost<TAB>name<TAB>route`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A route lacked the `%s` marker.
    NoMarker {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::BadLine { line, text } => write!(f, "line {line}: malformed `{text}`"),
            DbError::NoMarker { line, text } => {
                write!(f, "line {line}: route without %s marker `{text}`")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// An in-memory route database with the paper's lookup semantics.
#[derive(Debug, Clone, Default)]
pub struct RouteDb {
    entries: HashMap<String, DbEntry>,
}

impl RouteDb {
    /// Loads a database from pathalias output text. Lines may be
    /// `name\troute` or `cost\tname\troute`; `#`-prefixed lines (the
    /// printer's hidden-entry debug format) are skipped.
    pub fn from_output(text: &str) -> Result<RouteDb, DbError> {
        let mut entries = HashMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split('\t').collect();
            let (cost, name, route) = match fields.as_slice() {
                [name, route] => (None, *name, *route),
                [cost, name, route] => {
                    let c = cost.parse::<Cost>().map_err(|_| DbError::BadLine {
                        line,
                        text: raw.to_string(),
                    })?;
                    (Some(c), *name, *route)
                }
                _ => {
                    return Err(DbError::BadLine {
                        line,
                        text: raw.to_string(),
                    })
                }
            };
            if !route.contains("%s") {
                return Err(DbError::NoMarker {
                    line,
                    text: raw.to_string(),
                });
            }
            entries.insert(
                name.to_string(),
                DbEntry {
                    name: name.to_string(),
                    route: route.to_string(),
                    cost,
                },
            );
        }
        Ok(RouteDb { entries })
    }

    /// Builds a database from already-parsed entries (used by the disk
    /// reader and the serving layer). Later duplicates win, as in
    /// [`RouteDb::from_output`].
    pub fn from_entries(entries: impl IntoIterator<Item = DbEntry>) -> RouteDb {
        RouteDb {
            entries: entries.into_iter().map(|e| (e.name.clone(), e)).collect(),
        }
    }

    /// Builds a database straight from the printer's route table
    /// (visible entries only, as in the output file).
    pub fn from_table(table: &RouteTable) -> RouteDb {
        let entries = table
            .visible()
            .map(|r| {
                (
                    r.name.clone(),
                    DbEntry {
                        name: r.name.clone(),
                        route: r.route.clone(),
                        cost: Some(r.cost),
                    },
                )
            })
            .collect();
        RouteDb { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact-name fetch.
    pub fn get(&self, name: &str) -> Option<&DbEntry> {
        self.entries.get(name)
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &DbEntry> {
        self.entries.values()
    }

    /// The paper's mailer lookup: exact name first; for dotted names,
    /// progressively broader domain suffixes (`caip.rutgers.edu`, then
    /// `.rutgers.edu`, then `.edu`); finally the `.` default-route
    /// entry, if the table has one.
    pub fn lookup(&self, dest: &str) -> Option<Lookup<'_>> {
        if let Some(entry) = self.entries.get(dest) {
            return Some(Lookup {
                entry,
                kind: MatchKind::Exact,
            });
        }
        // Successive suffixes: strip one label at a time. A suffix is
        // always at least `.x`, so the bare-dot default entry can never
        // shadow a real domain match.
        let mut rest = dest;
        while let Some(dot) = rest.find('.') {
            let suffix = &rest[dot..];
            if suffix.len() > 1 {
                if let Some(entry) = self.entries.get(suffix) {
                    return Some(Lookup {
                        entry,
                        kind: MatchKind::DomainSuffix(suffix.to_string()),
                    });
                }
            }
            rest = &rest[dot + 1..];
        }
        self.entries.get(".").map(|entry| Lookup {
            entry,
            kind: MatchKind::Default,
        })
    }

    /// Produces the complete route for mail to `user` at `dest`,
    /// instantiating the format string. For a domain-suffix match "the
    /// argument here is not [the user], it is
    /// `caip.rutgers.edu!pleasant`".
    pub fn route_to(&self, dest: &str, user: &str) -> Option<String> {
        let hit = self.lookup(dest)?;
        let arg = match &hit.kind {
            MatchKind::Exact => user.to_string(),
            MatchKind::DomainSuffix(_) | MatchKind::Default => format!("{dest}!{user}"),
        };
        Some(hit.entry.route.replacen("%s", &arg, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's mailer example: routes as seen from a host whose
    /// route to seismo is `seismo!%s`, with `.edu` gatewayed there.
    fn paper_db() -> RouteDb {
        RouteDb::from_output(
            "seismo\tseismo!%s\n.edu\tseismo!%s\ncaip.rutgers.edu\tseismo!caip.rutgers.edu!%s\n",
        )
        .unwrap()
    }

    #[test]
    fn exact_match_uses_user_argument() {
        let db = paper_db();
        assert_eq!(
            db.route_to("caip.rutgers.edu", "pleasant").unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
    }

    #[test]
    fn suffix_match_carries_full_destination() {
        // Remove the exact entry; the .edu gateway must produce the
        // same final route, per the paper's worked example.
        let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
        let hit = db.lookup("caip.rutgers.edu").unwrap();
        assert_eq!(hit.kind, MatchKind::DomainSuffix(".edu".to_string()));
        assert_eq!(
            db.route_to("caip.rutgers.edu", "pleasant").unwrap(),
            "seismo!caip.rutgers.edu!pleasant"
        );
    }

    #[test]
    fn suffix_search_prefers_longest() {
        let db = RouteDb::from_output(".edu\tgw1!%s\n.rutgers.edu\tgw2!%s\n").unwrap();
        let hit = db.lookup("caip.rutgers.edu").unwrap();
        assert_eq!(hit.kind, MatchKind::DomainSuffix(".rutgers.edu".into()));
        assert_eq!(hit.entry.route, "gw2!%s");
    }

    #[test]
    fn default_route_is_the_last_resort() {
        let db = RouteDb::from_output(".edu\tgw!%s\n.\tsmart!%s\n").unwrap();
        // Suffix still wins for names it covers.
        let hit = db.lookup("x.edu").unwrap();
        assert_eq!(hit.kind, MatchKind::DomainSuffix(".edu".into()));
        // Everything else falls through to the bare-dot entry, with
        // the argument carrying the full destination (as for suffixes).
        let hit = db.lookup("unknown-host").unwrap();
        assert_eq!(hit.kind, MatchKind::Default);
        assert_eq!(
            db.route_to("unknown-host", "u").unwrap(),
            "smart!unknown-host!u"
        );
        assert_eq!(
            db.route_to("deep.x.gov", "u").unwrap(),
            "smart!deep.x.gov!u"
        );
        // A trailing-dot name must not let the default entry pose as a
        // domain suffix.
        let hit = db.lookup("oddname.").unwrap();
        assert_eq!(hit.kind, MatchKind::Default);
    }

    #[test]
    fn unknown_destination() {
        let db = paper_db();
        assert!(db.lookup("nowhere").is_none());
        assert!(db.route_to("nowhere", "u").is_none());
        assert!(db.lookup("x.nowhere.com").is_none());
    }

    #[test]
    fn parses_costed_output() {
        let db = RouteDb::from_output("0\tunc\t%s\n500\tduke\tduke!%s\n").unwrap();
        assert_eq!(db.get("duke").unwrap().cost, Some(500));
        assert_eq!(db.route_to("duke", "fred").unwrap(), "duke!fred");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let db = RouteDb::from_output("# hidden\n\nunc\t%s\n").unwrap();
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn bad_lines_error() {
        let e = RouteDb::from_output("just-one-field\n").unwrap_err();
        assert!(matches!(e, DbError::BadLine { line: 1, .. }));
        let e = RouteDb::from_output("host\tno-marker-here\n").unwrap_err();
        assert!(matches!(e, DbError::NoMarker { .. }));
        let e = RouteDb::from_output("notacost\thost\t%s\n").unwrap_err();
        assert!(matches!(e, DbError::BadLine { .. }));
    }

    #[test]
    fn from_table_matches_rendered_output() {
        use pathalias_core::Pathalias;
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("unc".into());
        pa.parse_str("m", "unc duke(500)\nduke phs(300)\n").unwrap();
        let out = pa.run().unwrap();
        let db1 = RouteDb::from_table(&out.routes);
        let db2 = RouteDb::from_output(&out.rendered).unwrap();
        assert_eq!(db1.len(), db2.len());
        assert_eq!(db1.route_to("phs", "u"), db2.route_to("phs", "u"));
        assert_eq!(db1.route_to("phs", "u").unwrap(), "duke!phs!u");
    }
}
