//! Scanner and parser for the pathalias input language.
//!
//! The original used yacc for parsing and replaced a lex-generated
//! scanner with a hand-built one, cutting total run time by 40 %. We
//! reproduce both halves: a fast, zero-copy, hand-built scanner
//! ([`scan`]) used by the recursive-descent parser ([`parse`] /
//! [`parse_into`] / [`parse_files`]), and a deliberately
//! allocation-heavy baseline scanner ([`slow`]) standing in for lex so
//! the benchmark harness can reproduce the comparison (experiment E3).
//!
//! # The input language
//!
//! Line-oriented; `#` starts a comment; a trailing `\` continues the
//! line; newlines inside `{ ... }` lists are ignored.
//!
//! ```text
//! unc     duke(HOURLY), phs(HOURLY*4)     # links with cost expressions
//! a       @b(10), c!(20)                  # routing operator prefix/suffix
//! ARPA    = @{mit-ai, ucbvax}(DEDICATED)  # network (clique as star)
//! princeton = fun                         # alias
//! private {bilbo}                         # file-scoped names
//! dead    {vortex, a!b}                   # dead host / dead link
//! delete  {oldhost, a!b}                  # remove host / link
//! adjust  {munnari(-200), seismo(HOURLY)} # node cost bias
//! file    {u.washington}                  # file boundary marker
//! gated   {BITNET}                        # network requiring gateways
//! gateway {BITNET!psuvax1}                # declare a gateway
//! ```
//!
//! Host names may contain letters, digits, `.`, `_` and `-`; a name
//! consisting solely of digits is a number. Because `-` may appear in
//! names, subtraction in cost expressions must be spaced: `HOURLY - 5`.
//!
//! # Examples
//!
//! ```
//! let g = pathalias_parser::parse("unc duke(HOURLY), phs(HOURLY*4)\n").unwrap();
//! let unc = g.try_node("unc").unwrap();
//! assert_eq!(g.links_from(unc).count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
#[allow(clippy::module_inception)]
mod parse;
pub mod scan;
pub mod slow;
mod token;

pub use error::ParseError;
pub use parse::{parse, parse_files, parse_into};
pub use token::{Tok, Token};
