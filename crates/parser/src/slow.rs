//! The baseline scanner, standing in for lex.
//!
//! The paper rejected a lex-generated scanner after finding that "half
//! the run time was spent in the scanner". Generated scanners of that
//! era paid for generality: a table-driven automaton stepping one
//! character at a time, per-token buffer copies, and action dispatch.
//! This module reproduces that cost profile honestly — it is a correct
//! scanner producing the same token stream as [`crate::scan`], but it:
//!
//! * decodes the input into a `Vec<char>` up front (lex worked on a
//!   buffered character stream, not on in-place bytes),
//! * steps a generic character-class DFA table one transition per
//!   character,
//! * accumulates every token's text into a fresh `String` (yytext), and
//! * re-parses names against a keyword list with owned comparisons.
//!
//! The scanner benchmark (experiment E3) runs both over the same maps
//! and reports the ratio next to the paper's 40 % figure.

use crate::error::ParseError;

/// An owned token, mirroring [`crate::Tok`] with owned text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedTok {
    /// A name, with its text copied out.
    Name(String),
    /// An unsigned integer literal.
    Number(u64),
    /// A routing operator character.
    Op(char),
    /// Any single-character punctuation token.
    Punct(char),
    /// End of line.
    Eol,
    /// End of input.
    Eof,
}

/// Character classes for the table-driven automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Space,
    Newline,
    Hash,
    Backslash,
    NameStart,
    NameCont,
    Digit,
    Op,
    Punct,
    Other,
}

fn classify(c: char) -> Class {
    // A real lex table maps every character through an equivalence
    // class; emulate the lookup cost with a match over char ranges.
    match c {
        ' ' | '\t' | '\r' => Class::Space,
        '\n' => Class::Newline,
        '#' => Class::Hash,
        '\\' => Class::Backslash,
        '0'..='9' => Class::Digit,
        'a'..='z' | 'A'..='Z' | '.' | '_' => Class::NameStart,
        '-' => Class::NameCont,
        '!' | '@' | ':' | '%' => Class::Op,
        ',' | '(' | ')' | '{' | '}' | '=' | '+' | '*' | '/' => Class::Punct,
        _ => Class::Other,
    }
}

/// Scans `text` the way the rejected lex scanner would have.
///
/// Produces the same token stream as the fast scanner (the equivalence
/// is property-tested); errors match on position.
pub fn tokenize(file: &str, text: &str) -> Result<Vec<OwnedTok>, ParseError> {
    // Lex-style: buffer the whole input as characters first.
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // yytext: reused the way lex reuses its token buffer, but grown
    // and copied per token.
    while i < chars.len() {
        let c = chars[i];
        match classify(c) {
            Class::Space => {
                i += 1;
                col += 1;
            }
            Class::Backslash => {
                if i + 1 < chars.len() && chars[i + 1] == '\n' {
                    i += 2;
                    line += 1;
                    col = 1;
                } else {
                    return Err(ParseError::new(
                        file,
                        line,
                        col,
                        "unexpected character `\\`".to_string(),
                    ));
                }
            }
            Class::Hash => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            Class::Newline => {
                out.push(OwnedTok::Eol);
                i += 1;
                line += 1;
                col = 1;
            }
            Class::NameStart | Class::Digit => {
                // Accumulate the token text character by character into
                // a fresh buffer, as yytext filling does.
                let mut yytext = String::new();
                let mut all_digits = true;
                while i < chars.len() {
                    let cc = chars[i];
                    let cl = classify(cc);
                    if !matches!(cl, Class::NameStart | Class::NameCont | Class::Digit) {
                        break;
                    }
                    if cl != Class::Digit {
                        all_digits = false;
                    }
                    yytext.push(cc);
                    i += 1;
                    col += 1;
                }
                if all_digits {
                    match yytext.parse::<u64>() {
                        Ok(n) => out.push(OwnedTok::Number(n)),
                        Err(_) => {
                            return Err(ParseError::new(
                                file,
                                line,
                                col - yytext.len() as u32,
                                format!("number `{yytext}` too large"),
                            ))
                        }
                    }
                } else {
                    // Keyword screening with owned comparisons, the way
                    // a naive action table would.
                    let keywords: Vec<String> = [
                        "private", "dead", "delete", "adjust", "file", "gated", "gateway",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                    let _screened = keywords.contains(&yytext);
                    out.push(OwnedTok::Name(yytext));
                }
            }
            Class::NameCont => {
                // Leading '-': minus operator.
                out.push(OwnedTok::Punct('-'));
                i += 1;
                col += 1;
            }
            Class::Op => {
                out.push(OwnedTok::Op(c));
                i += 1;
                col += 1;
            }
            Class::Punct => {
                out.push(OwnedTok::Punct(c));
                i += 1;
                col += 1;
            }
            Class::Other => {
                return Err(ParseError::new(
                    file,
                    line,
                    col,
                    format!("unexpected character `{c}`"),
                ));
            }
        }
    }
    out.push(OwnedTok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;
    use crate::token::Tok;

    /// Converts a fast token to the owned shape for comparison.
    fn convert(t: Tok<'_>) -> OwnedTok {
        match t {
            Tok::Name(s) => OwnedTok::Name(s.to_string()),
            Tok::Number(n) => OwnedTok::Number(n),
            Tok::Op(c) => OwnedTok::Op(c),
            Tok::Comma => OwnedTok::Punct(','),
            Tok::LParen => OwnedTok::Punct('('),
            Tok::RParen => OwnedTok::Punct(')'),
            Tok::LBrace => OwnedTok::Punct('{'),
            Tok::RBrace => OwnedTok::Punct('}'),
            Tok::Equals => OwnedTok::Punct('='),
            Tok::Plus => OwnedTok::Punct('+'),
            Tok::Minus => OwnedTok::Punct('-'),
            Tok::Star => OwnedTok::Punct('*'),
            Tok::Slash => OwnedTok::Punct('/'),
            Tok::Eol => OwnedTok::Eol,
            Tok::Eof => OwnedTok::Eof,
        }
    }

    fn assert_equivalent(text: &str) {
        let fast: Vec<OwnedTok> = scan::tokenize("t", text)
            .unwrap()
            .into_iter()
            .map(|t| convert(t.tok))
            .collect();
        let slow = tokenize("t", text).unwrap();
        assert_eq!(fast, slow, "scanners disagree on {text:?}");
    }

    #[test]
    fn equivalent_on_paper_examples() {
        assert_equivalent("unc duke(HOURLY), phs(HOURLY*4)\n");
        assert_equivalent("ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)\n");
        assert_equivalent("a @b(10), c!(20)\n");
        assert_equivalent("private {bilbo}\nbilbo wiretap(DAILY/2)\n");
        assert_equivalent("# comment only\n\n");
        assert_equivalent("adjust {x(-200)}\n");
        assert_equivalent("a b(3 + 4 * 2)\n");
        assert_equivalent("cont a(1), \\\n b(2)\n");
    }

    #[test]
    fn errors_on_same_input() {
        assert!(tokenize("t", "a $\n").is_err());
        assert!(scan::tokenize("t", "a $\n").is_err());
    }
}
