//! The recursive-descent statement parser (yacc replaced by hand).
//!
//! "Parsing is done with yacc. We use syntax-directed translation to
//! support a rich syntax with edge weights and labels, aliases,
//! networks, and accommodation of host name collisions." The grammar is
//! small and LL(2); a hand parser keeps the crate dependency-free and
//! gives better error messages than the original's `syntax error`.

use crate::error::ParseError;
use crate::expr;
use crate::scan::Lexer;
use crate::token::{Tok, Token};
use pathalias_graph::{Cost, Dir, Graph, NodeId, RouteOp, DEFAULT_COST};

/// Parses a single anonymous input, returning the graph.
///
/// # Examples
///
/// ```
/// let g = pathalias_parser::parse("a b(10), @c(20)\n").unwrap();
/// assert_eq!(g.node_count(), 3);
/// ```
pub fn parse(text: &str) -> Result<Graph, ParseError> {
    let mut g = Graph::new();
    parse_into(&mut g, "<input>", text)?;
    g.validate();
    Ok(g)
}

/// Parses several named input files into one graph, with file-boundary
/// semantics for `private` declarations, then validates.
pub fn parse_files(inputs: &[(&str, &str)]) -> Result<Graph, ParseError> {
    let mut g = Graph::new();
    for (file, text) in inputs {
        parse_into(&mut g, file, text)?;
    }
    g.validate();
    Ok(g)
}

/// Parses one input file into an existing graph. Does not validate;
/// callers should invoke [`Graph::validate`] after the last file.
pub fn parse_into(g: &mut Graph, file: &str, text: &str) -> Result<(), ParseError> {
    g.begin_file(file);
    let mut p = Parser {
        lx: Lexer::new(file, text),
        g,
    };
    p.run()
}

struct Parser<'g, 'a> {
    lx: Lexer<'a>,
    g: &'g mut Graph,
}

impl<'a> Parser<'_, 'a> {
    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            let t = self.lx.next_token()?;
            match t.tok {
                Tok::Eol => continue,
                Tok::Eof => return Ok(()),
                Tok::Name(name) => self.statement(name)?,
                other => {
                    return Err(self
                        .lx
                        .error_at_token(&t, format!("expected a host name, found {other}")))
                }
            }
        }
    }

    /// Dispatches on the token after the leading name: `{` means a
    /// command keyword, `=` a network or alias, anything else a link
    /// list. Keywords are contextual — a host may be called `dead`.
    fn statement(&mut self, first: &'a str) -> Result<(), ParseError> {
        let next = self.lx.peek()?;
        match next.tok {
            Tok::LBrace => match first {
                "private" | "dead" | "delete" | "adjust" | "file" | "gated" | "gateway" => {
                    self.command(first)
                }
                _ => Err(self
                    .lx
                    .error_at_token(&next, format!("unexpected `{{` after host `{first}`"))),
            },
            Tok::Equals => {
                self.lx.next_token()?;
                self.net_or_alias(first)
            }
            _ => self.links(first),
        }
    }

    /// `host target, target, ...` — also a bare `host` declaring a node.
    fn links(&mut self, first: &str) -> Result<(), ParseError> {
        let from = self.g.node(first);
        loop {
            let t = self.lx.peek()?;
            match t.tok {
                Tok::Eol => {
                    self.lx.next_token()?;
                    return Ok(());
                }
                Tok::Eof => return Ok(()),
                _ => {}
            }
            let (to, cost, op) = self.target()?;
            self.g.declare_link(from, to, cost, op);
            let sep = self.lx.next_token()?;
            match sep.tok {
                Tok::Comma => continue,
                Tok::Eol | Tok::Eof => return Ok(()),
                other => {
                    return Err(self.lx.error_at_token(
                        &sep,
                        format!("expected `,` or end of line after link, found {other}"),
                    ))
                }
            }
        }
    }

    /// One link target: `[op]name[op][(cost)]`.
    fn target(&mut self) -> Result<(NodeId, Cost, RouteOp), ParseError> {
        let mut prefix: Option<char> = None;
        let mut t = self.lx.next_token()?;
        if let Tok::Op(c) = t.tok {
            prefix = Some(c);
            t = self.lx.next_token()?;
        }
        let Tok::Name(name) = t.tok else {
            return Err(self
                .lx
                .error_at_token(&t, format!("expected a host name, found {}", t.tok)));
        };
        let mut suffix: Option<char> = None;
        let peeked = self.lx.peek()?;
        if let Tok::Op(c) = peeked.tok {
            self.lx.next_token()?;
            suffix = Some(c);
        }
        let op = match (prefix, suffix) {
            (Some(_), Some(_)) => {
                return Err(self.lx.error_at_token(
                    &t,
                    format!("host `{name}` has routing operators on both sides"),
                ))
            }
            (Some(c), None) => RouteOp {
                ch: c,
                dir: Dir::Right,
            },
            (None, Some(c)) => RouteOp {
                ch: c,
                dir: Dir::Left,
            },
            (None, None) => RouteOp::UUCP,
        };
        let cost = if self.lx.peek()?.tok == Tok::LParen {
            expr::parse_cost(&mut self.lx)?
        } else {
            DEFAULT_COST
        };
        Ok((self.g.node(name), cost, op))
    }

    /// After `name =`: either a network `[op]{members}(cost)` or an
    /// alias `name = other`.
    fn net_or_alias(&mut self, first: &str) -> Result<(), ParseError> {
        let t = self.lx.next_token()?;
        match t.tok {
            Tok::Name(other) => {
                let a = self.g.node(first);
                let b = self.g.node(other);
                self.g.declare_alias(a, b);
                self.end_of_statement()
            }
            Tok::Op(c) => {
                let open = self.lx.next_token()?;
                if open.tok != Tok::LBrace {
                    return Err(self.lx.error_at_token(
                        &open,
                        format!("expected `{{` after network operator, found {}", open.tok),
                    ));
                }
                self.network(
                    first,
                    RouteOp {
                        ch: c,
                        dir: Dir::Right,
                    },
                )
            }
            Tok::LBrace => self.network(first, RouteOp::UUCP),
            other => Err(self.lx.error_at_token(
                &t,
                format!("expected an alias name or `{{` after `=`, found {other}"),
            )),
        }
    }

    /// Members between `{` and `}`, then an optional default cost.
    /// Per-member costs override the default, e.g. `{a(10), b}` with
    /// `(20)` after the brace gives a→net 10 and b→net 20.
    fn network(&mut self, net_name: &str, op: RouteOp) -> Result<(), ParseError> {
        let mut members: Vec<(NodeId, Option<Cost>)> = Vec::new();
        loop {
            let t = self.next_skip_eol()?;
            match t.tok {
                Tok::RBrace => break,
                Tok::Name(m) => {
                    let id = self.g.node(m);
                    let cost = if self.lx.peek()?.tok == Tok::LParen {
                        Some(expr::parse_cost(&mut self.lx)?)
                    } else {
                        None
                    };
                    members.push((id, cost));
                    let sep = self.next_skip_eol()?;
                    match sep.tok {
                        Tok::Comma => continue,
                        Tok::RBrace => break,
                        other => {
                            return Err(self.lx.error_at_token(
                                &sep,
                                format!("expected `,` or `}}` in member list, found {other}"),
                            ))
                        }
                    }
                }
                other => {
                    return Err(self.lx.error_at_token(
                        &t,
                        format!("expected a member name or `}}`, found {other}"),
                    ))
                }
            }
        }
        let default_cost = if self.lx.peek()?.tok == Tok::LParen {
            expr::parse_cost(&mut self.lx)?
        } else {
            DEFAULT_COST
        };
        let net = self.g.node(net_name);
        let resolved: Vec<(NodeId, Cost)> = members
            .into_iter()
            .map(|(id, c)| (id, c.unwrap_or(default_cost)))
            .collect();
        self.g.declare_network(net, &resolved, op);
        self.end_of_statement()
    }

    /// Brace-list commands: `private`, `dead`, `delete`, `adjust`,
    /// `file`, `gated`, `gateway`.
    fn command(&mut self, kw: &str) -> Result<(), ParseError> {
        let open = self.lx.next_token()?;
        debug_assert_eq!(open.tok, Tok::LBrace);
        let mut count = 0usize;
        loop {
            let t = self.next_skip_eol()?;
            match t.tok {
                Tok::RBrace => break,
                Tok::Name(name) => {
                    self.command_item(kw, name, &t)?;
                    count += 1;
                    let sep = self.next_skip_eol()?;
                    match sep.tok {
                        Tok::Comma => continue,
                        Tok::RBrace => break,
                        other => {
                            return Err(self.lx.error_at_token(
                                &sep,
                                format!("expected `,` or `}}` in {kw} list, found {other}"),
                            ))
                        }
                    }
                }
                other => {
                    return Err(self.lx.error_at_token(
                        &t,
                        format!("expected a name in {kw} list, found {other}"),
                    ))
                }
            }
        }
        if kw == "file" && count != 1 {
            let t = self.lx.peek()?;
            return Err(self
                .lx
                .error_at_token(&t, format!("file takes exactly one name, got {count}")));
        }
        self.end_of_statement()
    }

    fn command_item(&mut self, kw: &str, name: &'a str, at: &Token<'a>) -> Result<(), ParseError> {
        match kw {
            "private" => {
                self.g.declare_private(name);
            }
            "dead" | "delete" => {
                // `name` alone is a host; `from!to` is a link.
                if self.lx.peek()?.tok == Tok::Op('!') {
                    self.lx.next_token()?;
                    let t2 = self.lx.next_token()?;
                    let Tok::Name(to_name) = t2.tok else {
                        return Err(self.lx.error_at_token(
                            &t2,
                            format!("expected a host after `!` in {kw} list, found {}", t2.tok),
                        ));
                    };
                    let from = self.g.node(name);
                    let to = self.g.node(to_name);
                    if kw == "dead" {
                        self.g.mark_dead_link(from, to);
                    } else {
                        self.g.delete_link(from, to);
                    }
                } else {
                    let id = self.g.node(name);
                    if kw == "dead" {
                        self.g.mark_dead(id);
                    } else {
                        self.g.delete_node(id);
                    }
                }
            }
            "adjust" => {
                if self.lx.peek()?.tok != Tok::LParen {
                    return Err(self.lx.error_at_token(
                        at,
                        format!("adjust requires a parenthesized bias after `{name}`"),
                    ));
                }
                let bias = expr::parse_signed(&mut self.lx)?;
                let id = self.g.node(name);
                self.g.adjust_node(id, bias);
            }
            "file" => {
                self.g.begin_file(name);
            }
            "gated" => {
                let id = self.g.node(name);
                self.g.mark_gated(id);
            }
            "gateway" => {
                let bang = self.lx.next_token()?;
                if bang.tok != Tok::Op('!') {
                    return Err(self.lx.error_at_token(
                        &bang,
                        format!("gateway items are net!host pairs, found {}", bang.tok),
                    ));
                }
                let t2 = self.lx.next_token()?;
                let Tok::Name(host_name) = t2.tok else {
                    return Err(self.lx.error_at_token(
                        &t2,
                        format!("expected a gateway host after `!`, found {}", t2.tok),
                    ));
                };
                let net = self.g.node(name);
                let host = self.g.node(host_name);
                self.g.declare_gateway(net, host);
            }
            _ => unreachable!("statement() filters keywords"),
        }
        Ok(())
    }

    /// Next token, skipping newlines (inside brace lists).
    fn next_skip_eol(&mut self) -> Result<Token<'a>, ParseError> {
        loop {
            let t = self.lx.next_token()?;
            if t.tok != Tok::Eol {
                return Ok(t);
            }
        }
    }

    fn end_of_statement(&mut self) -> Result<(), ParseError> {
        let t = self.lx.next_token()?;
        match t.tok {
            Tok::Eol | Tok::Eof => Ok(()),
            other => Err(self
                .lx
                .error_at_token(&t, format!("expected end of line, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalias_graph::{LinkFlags, NodeFlags};

    fn link_cost(g: &Graph, from: &str, to: &str) -> Option<Cost> {
        let f = g.try_node(from)?;
        let t = g.try_node(to)?;
        g.links_from(f)
            .find(|(_, l)| l.to == t)
            .map(|(_, l)| l.cost)
    }

    #[test]
    fn paper_first_example() {
        // "a b(10), c(20)" from the INPUT section.
        let g = parse("a b(10), c(20)\n").unwrap();
        assert_eq!(link_cost(&g, "a", "b"), Some(10));
        assert_eq!(link_cost(&g, "a", "c"), Some(20));
    }

    #[test]
    fn arpa_syntax_and_explicit_uucp() {
        let g = parse("a @b(10), c!(20)\n").unwrap();
        let a = g.try_node("a").unwrap();
        let b = g.try_node("b").unwrap();
        let c = g.try_node("c").unwrap();
        let (_, lb) = g.links_from(a).find(|(_, l)| l.to == b).unwrap();
        assert_eq!(lb.op, RouteOp::ARPA);
        let (_, lc) = g.links_from(a).find(|(_, l)| l.to == c).unwrap();
        assert_eq!(lc.op, RouteOp::UUCP);
    }

    #[test]
    fn network_with_costs() {
        let g = parse("UNC-dwarf = {dopey, grumpy, sleepy}(10)\n").unwrap();
        let net = g.try_node("UNC-dwarf").unwrap();
        assert!(g.node_ref(net).is_net());
        assert_eq!(link_cost(&g, "dopey", "UNC-dwarf"), Some(10));
        assert_eq!(link_cost(&g, "UNC-dwarf", "sleepy"), Some(0));
    }

    #[test]
    fn network_with_operator_and_symbol() {
        let g = parse("ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)\n").unwrap();
        let m = g.try_node("mit-ai").unwrap();
        let net = g.try_node("ARPA").unwrap();
        let (_, l) = g.links_from(m).find(|(_, l)| l.to == net).unwrap();
        assert_eq!(l.cost, 95);
        assert_eq!(l.op, RouteOp::ARPA);
    }

    #[test]
    fn per_member_cost_overrides() {
        let g = parse("N = {a(10), b}(20)\n").unwrap();
        assert_eq!(link_cost(&g, "a", "N"), Some(10));
        assert_eq!(link_cost(&g, "b", "N"), Some(20));
    }

    #[test]
    fn multiline_network() {
        let g = parse("N = {a,\n b,\n c}(5)\n").unwrap();
        assert_eq!(link_cost(&g, "c", "N"), Some(5));
    }

    #[test]
    fn alias_declaration() {
        let g = parse("princeton = fun\n").unwrap();
        let p = g.try_node("princeton").unwrap();
        let f = g.try_node("fun").unwrap();
        let (_, l) = g.links_from(p).next().unwrap();
        assert_eq!(l.to, f);
        assert!(l.flags.contains(LinkFlags::ALIAS));
    }

    #[test]
    fn default_cost_applied() {
        let g = parse("a b\n").unwrap();
        assert_eq!(link_cost(&g, "a", "b"), Some(DEFAULT_COST));
    }

    #[test]
    fn bare_host_declares_node() {
        let g = parse("lonely\n").unwrap();
        assert!(g.try_node("lonely").is_some());
    }

    #[test]
    fn private_command_and_scope() {
        let g = parse_files(&[
            ("one", "bilbo princeton(10)\n"),
            ("two", "private {bilbo}\nbilbo wiretap(10)\n"),
        ])
        .unwrap();
        // Two distinct bilbos.
        let count = g
            .iter_nodes()
            .filter(|(id, _)| g.name(*id) == "bilbo")
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn dead_delete_commands() {
        let g = parse("a b(10)\ndead {a, a!b}\ndelete {c}\n").unwrap();
        let a = g.try_node("a").unwrap();
        assert!(g.node_ref(a).flags.contains(NodeFlags::DEAD));
        let (_, l) = g.links_from(a).next().unwrap();
        assert!(l.flags.contains(LinkFlags::DEAD));
        let c = g.try_node("c").unwrap();
        assert!(g.node_ref(c).flags.contains(NodeFlags::DELETED));
    }

    #[test]
    fn adjust_command() {
        let g = parse("adjust {slow(200), fast(-50)}\n").unwrap();
        assert_eq!(g.node_ref(g.try_node("slow").unwrap()).adjust, 200);
        assert_eq!(g.node_ref(g.try_node("fast").unwrap()).adjust, -50);
    }

    #[test]
    fn adjust_without_cost_is_error() {
        let e = parse("adjust {x}\n").unwrap_err();
        assert!(e.msg.contains("adjust"), "{e}");
    }

    #[test]
    fn gated_and_gateway() {
        let g = parse("BITNET = {psuvax1, cornell}(DAILY)\ngated {BITNET}\npsuvax1 BITNET(HOURLY)\ngateway {BITNET!psuvax1}\n").unwrap();
        let net = g.try_node("BITNET").unwrap();
        assert!(g.node_ref(net).is_gated());
        let p = g.try_node("psuvax1").unwrap();
        assert!(g
            .links_from(p)
            .any(|(_, l)| l.to == net && l.flags.contains(LinkFlags::GATEWAY)));
    }

    #[test]
    fn file_command_resets_private_scope() {
        let text = "private {x}\nx a(10)\nfile {next-site}\nx b(10)\n";
        let g = parse(text).unwrap();
        // First x is private, second x is global.
        let xs: Vec<_> = g
            .iter_nodes()
            .filter(|(id, _)| g.name(*id) == "x")
            .map(|(id, n)| (id, n.flags.contains(NodeFlags::PRIVATE)))
            .collect();
        assert_eq!(xs.len(), 2);
        assert!(xs[0].1 && !xs[1].1);
    }

    #[test]
    fn comments_and_blanks_between_statements() {
        let g = parse("# map preamble\n\na b(10) # inline\n\n# trailer\n").unwrap();
        assert_eq!(link_cost(&g, "a", "b"), Some(10));
    }

    #[test]
    fn continuation_line() {
        let g = parse("a b(10), \\\n  c(20)\n").unwrap();
        assert_eq!(link_cost(&g, "a", "c"), Some(20));
    }

    #[test]
    fn host_named_like_keyword() {
        let g = parse("dead alive(10)\n").unwrap();
        assert_eq!(link_cost(&g, "dead", "alive"), Some(10));
    }

    #[test]
    fn error_both_side_operators() {
        let e = parse("a @b!(10)\n").unwrap_err();
        assert!(e.msg.contains("both sides"), "{e}");
    }

    #[test]
    fn error_missing_separator() {
        let e = parse("a b(10) c(20)\n").unwrap_err();
        assert!(e.msg.contains("expected `,`"), "{e}");
    }

    #[test]
    fn error_bad_statement_start() {
        let e = parse("(oops)\n").unwrap_err();
        assert!(e.msg.contains("expected a host name"), "{e}");
    }

    #[test]
    fn error_gateway_shape() {
        let e = parse("gateway {justanet}\n").unwrap_err();
        assert!(e.msg.contains("net!host"), "{e}");
    }

    #[test]
    fn error_file_arity() {
        let e = parse("file {a, b}\n").unwrap_err();
        assert!(e.msg.contains("exactly one"), "{e}");
    }

    #[test]
    fn error_unclosed_brace() {
        assert!(parse("N = {a, b\n").is_err());
    }

    #[test]
    fn error_reports_location() {
        let e = parse("a b(10)\nq $\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.col >= 3);
    }

    #[test]
    fn last_line_without_newline() {
        let g = parse("a b(10)").unwrap();
        assert_eq!(link_cost(&g, "a", "b"), Some(10));
    }

    #[test]
    fn empty_input_ok() {
        let g = parse("").unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn duplicate_links_warn_and_keep_cheapest() {
        let g = parse("a b(300)\na b(100)\n").unwrap();
        assert_eq!(link_cost(&g, "a", "b"), Some(100));
        assert!(!g.warnings().is_empty());
    }
}
