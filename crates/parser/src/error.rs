//! Parse errors with source locations.

use std::fmt;

/// A fatal error encountered while scanning or parsing input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Input file name (as given to the parser).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    /// Builds an error at a location.
    pub fn new(file: impl Into<String>, line: u32, col: u32, msg: impl Into<String>) -> Self {
        ParseError {
            file: file.into(),
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_grep_friendly() {
        let e = ParseError::new("usenet.map", 12, 3, "expected `)`");
        assert_eq!(e.to_string(), "usenet.map:12:3: expected `)`");
    }
}
