//! Lexical tokens.

use std::fmt;

/// A lexical token of the pathalias input language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    /// A host, network, domain or cost-symbol name.
    Name(&'a str),
    /// An unsigned integer literal.
    Number(u64),
    /// A routing-operator character: one of `! @ : %`.
    Op(char),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of line (statement terminator outside braces).
    Eol,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Name(s) => write!(f, "name `{s}`"),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::Op(c) => write!(f, "operator `{c}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Equals => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Eol => write!(f, "end of line"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token itself.
    pub tok: Tok<'a>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// Whether `b` may appear in a host name. Names cover letters, digits,
/// dot (domains), underscore and hyphen (`mit-ai`, `UNC-dwarf`).
#[inline]
pub(crate) fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-'
}

/// Whether `b` may *start* a host name (hyphen may not: it is the minus
/// operator in cost expressions).
#[inline]
pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Tok::Name("unc").to_string(), "name `unc`");
        assert_eq!(Tok::Number(5).to_string(), "number 5");
        assert_eq!(Tok::Op('@').to_string(), "operator `@`");
        assert_eq!(Tok::Eol.to_string(), "end of line");
    }

    #[test]
    fn name_byte_classes() {
        for b in [b'a', b'Z', b'0', b'.', b'_', b'-'] {
            assert!(is_name_byte(b));
        }
        for b in [b' ', b'!', b'@', b'(', b'#', b'\\'] {
            assert!(!is_name_byte(b));
        }
        assert!(is_name_start(b'a'));
        assert!(is_name_start(b'.'));
        assert!(!is_name_start(b'-'));
    }
}
