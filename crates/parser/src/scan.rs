//! The hand-built scanner.
//!
//! The paper: "We experimented with lex for transforming the raw input
//! into lexical tokens, but were disappointed with its performance: half
//! the run time was spent in the scanner. Since our input tokens are
//! easy to recognize, we built a simple scanner and cut the overall run
//! time by 40%." This is that scanner: a single pass over the input
//! bytes, no allocation per token (names are slices of the input), and a
//! one-token pushback buffer for the parser's lookahead.

use crate::error::ParseError;
use crate::token::{is_name_byte, is_name_start, Tok, Token};

/// Streaming scanner over one input file.
///
/// # Examples
///
/// ```
/// use pathalias_parser::scan::Lexer;
/// use pathalias_parser::Tok;
///
/// let mut lx = Lexer::new("map", "unc duke(500)\n");
/// assert_eq!(lx.next_token().unwrap().tok, Tok::Name("unc"));
/// assert_eq!(lx.next_token().unwrap().tok, Tok::Name("duke"));
/// assert_eq!(lx.next_token().unwrap().tok, Tok::LParen);
/// ```
pub struct Lexer<'a> {
    file: &'a str,
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    line_start: usize,
    pushed: Option<Token<'a>>,
}

impl<'a> Lexer<'a> {
    /// Creates a scanner for `text`, reporting errors against `file`.
    pub fn new(file: &'a str, text: &'a str) -> Self {
        Lexer {
            file,
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            line_start: 0,
            pushed: None,
        }
    }

    /// The file name used in error messages.
    pub fn file(&self) -> &str {
        self.file
    }

    fn col(&self, at: usize) -> u32 {
        (at - self.line_start + 1) as u32
    }

    /// Builds a [`ParseError`] at byte offset `at`.
    pub fn error_at(&self, at: usize, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.file, self.line, self.col(at), msg)
    }

    /// Builds a [`ParseError`] at a previously returned token.
    pub fn error_at_token(&self, t: &Token<'a>, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.file, t.line, t.col, msg)
    }

    /// Pushes one token back; the next [`next_token`] returns it.
    ///
    /// [`next_token`]: Lexer::next_token
    pub fn push_back(&mut self, t: Token<'a>) {
        debug_assert!(self.pushed.is_none(), "single-token pushback only");
        self.pushed = Some(t);
    }

    /// Returns the next token without consuming it.
    pub fn peek(&mut self) -> Result<Token<'a>, ParseError> {
        let t = self.next_token()?;
        self.push_back(t);
        Ok(t)
    }

    /// Scans and returns the next token.
    pub fn next_token(&mut self) -> Result<Token<'a>, ParseError> {
        if let Some(t) = self.pushed.take() {
            return Ok(t);
        }
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Ok(self.make(Tok::Eof, self.pos));
            };
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\\' if self.src.get(self.pos + 1) == Some(&b'\n') => {
                    // Line continuation: swallow both, stay mid-statement.
                    self.pos += 2;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'\n' => {
                    let at = self.pos;
                    let t = self.make(Tok::Eol, at);
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                    return Ok(t);
                }
                _ => break,
            }
        }
        let at = self.pos;
        let b = self.src[at];
        let single = |tok| (tok, 1usize);
        let (tok, len) = match b {
            b',' => single(Tok::Comma),
            b'(' => single(Tok::LParen),
            b')' => single(Tok::RParen),
            b'{' => single(Tok::LBrace),
            b'}' => single(Tok::RBrace),
            b'=' => single(Tok::Equals),
            b'+' => single(Tok::Plus),
            b'-' => single(Tok::Minus),
            b'*' => single(Tok::Star),
            b'/' => single(Tok::Slash),
            b'!' | b'@' | b':' | b'%' => single(Tok::Op(b as char)),
            _ if is_name_start(b) => {
                let mut end = at + 1;
                while end < self.src.len() && is_name_byte(self.src[end]) {
                    end += 1;
                }
                let word = &self.text[at..end];
                let tok = if word.bytes().all(|b| b.is_ascii_digit()) {
                    match word.parse::<u64>() {
                        Ok(n) => Tok::Number(n),
                        Err(_) => {
                            return Err(self.error_at(at, format!("number `{word}` too large")))
                        }
                    }
                } else {
                    Tok::Name(word)
                };
                (tok, end - at)
            }
            _ => {
                return Err(self.error_at(at, format!("unexpected character `{}`", char::from(b))));
            }
        };
        let t = self.make(tok, at);
        self.pos += len;
        Ok(t)
    }

    fn make(&self, tok: Tok<'a>, at: usize) -> Token<'a> {
        Token {
            tok,
            line: self.line,
            col: self.col(at),
        }
    }
}

/// Scans the whole input into a vector (benchmark entry point; the
/// parser uses the streaming interface).
pub fn tokenize<'a>(file: &'a str, text: &'a str) -> Result<Vec<Token<'a>>, ParseError> {
    let mut lx = Lexer::new(file, text);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.tok == Tok::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Tok<'_>> {
        tokenize("t", text)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn paper_link_line() {
        assert_eq!(
            toks("unc duke(HOURLY), phs(HOURLY*4)\n"),
            vec![
                Tok::Name("unc"),
                Tok::Name("duke"),
                Tok::LParen,
                Tok::Name("HOURLY"),
                Tok::RParen,
                Tok::Comma,
                Tok::Name("phs"),
                Tok::LParen,
                Tok::Name("HOURLY"),
                Tok::Star,
                Tok::Number(4),
                Tok::RParen,
                Tok::Eol,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn network_line() {
        assert_eq!(
            toks("ARPA = @{mit-ai, ucbvax}(DEDICATED)\n"),
            vec![
                Tok::Name("ARPA"),
                Tok::Equals,
                Tok::Op('@'),
                Tok::LBrace,
                Tok::Name("mit-ai"),
                Tok::Comma,
                Tok::Name("ucbvax"),
                Tok::RBrace,
                Tok::LParen,
                Tok::Name("DEDICATED"),
                Tok::RParen,
                Tok::Eol,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        assert_eq!(
            toks("# a map\n\nunc duke(5) # trailing\n"),
            vec![
                Tok::Eol,
                Tok::Eol,
                Tok::Name("unc"),
                Tok::Name("duke"),
                Tok::LParen,
                Tok::Number(5),
                Tok::RParen,
                Tok::Eol,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        assert_eq!(
            toks("unc duke(5), \\\n  phs(6)\n"),
            toks("unc duke(5), phs(6)\n")
        );
    }

    #[test]
    fn names_with_dots_hyphens_digits() {
        assert_eq!(
            toks(".rutgers.edu UNC-dwarf 3com u_w\n"),
            vec![
                Tok::Name(".rutgers.edu"),
                Tok::Name("UNC-dwarf"),
                Tok::Name("3com"),
                Tok::Name("u_w"),
                Tok::Eol,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn minus_vs_hyphen() {
        // Inside a name it is a hyphen; spaced, it is subtraction.
        assert_eq!(
            toks("(HOURLY - 5)\n")[0..5],
            [
                Tok::LParen,
                Tok::Name("HOURLY"),
                Tok::Minus,
                Tok::Number(5),
                Tok::RParen,
            ]
        );
        assert_eq!(toks("a-b\n")[0], Tok::Name("a-b"));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("@b c! d:e %f\n"),
            vec![
                Tok::Op('@'),
                Tok::Name("b"),
                Tok::Name("c"),
                Tok::Op('!'),
                Tok::Name("d"),
                Tok::Op(':'),
                Tok::Name("e"),
                Tok::Op('%'),
                Tok::Name("f"),
                Tok::Eol,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let ts = tokenize("t", "a b\n  c\n").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1)); // a
        assert_eq!((ts[1].line, ts[1].col), (1, 3)); // b
        assert_eq!((ts[3].line, ts[3].col), (2, 3)); // c
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let e = tokenize("t", "a $\n").unwrap_err();
        assert!(e.msg.contains('$'));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn huge_number_is_an_error() {
        let e = tokenize("t", "99999999999999999999999999\n").unwrap_err();
        assert!(e.msg.contains("too large"));
    }

    #[test]
    fn pushback_roundtrip() {
        let mut lx = Lexer::new("t", "a b\n");
        let a = lx.next_token().unwrap();
        lx.push_back(a);
        assert_eq!(lx.next_token().unwrap().tok, Tok::Name("a"));
        assert_eq!(lx.peek().unwrap().tok, Tok::Name("b"));
        assert_eq!(lx.next_token().unwrap().tok, Tok::Name("b"));
    }

    #[test]
    fn empty_input() {
        assert_eq!(toks(""), vec![Tok::Eof]);
    }

    #[test]
    fn comment_only_file_without_newline() {
        assert_eq!(toks("# nothing"), vec![Tok::Eof]);
    }
}
