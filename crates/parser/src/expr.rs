//! Cost-expression evaluation.
//!
//! "Costs can be expressed as arbitrary arithmetic expressions, mixing
//! numbers and symbolic values. For example, HOURLY*3 describes a
//! connection that is completed once every three hours."
//!
//! Grammar (standard precedence, left associative):
//!
//! ```text
//! expr   := term  (('+' | '-') term)*
//! term   := unary (('*' | '/') unary)*
//! unary  := ('-' | '+')* factor
//! factor := NUMBER | SYMBOL | '(' expr ')'
//! ```
//!
//! Link costs must be non-negative (Dijkstra's requirement); `adjust`
//! biases may be negative. Both are evaluated in `i128` internally so
//! intermediate negatives like `5 - 10 + 20` work, with range checks at
//! the edges.

use crate::error::ParseError;
use crate::scan::Lexer;
use crate::token::Tok;
use pathalias_graph::{symbol_cost, Cost};

/// Largest accepted cost value; far above INF, far below overflow.
const COST_LIMIT: i128 = u32::MAX as i128;

fn factor(lx: &mut Lexer<'_>) -> Result<i128, ParseError> {
    let t = lx.next_token()?;
    match t.tok {
        Tok::Number(n) => Ok(n as i128),
        Tok::Name(sym) => match symbol_cost(sym) {
            Some(v) => Ok(v as i128),
            None => Err(lx.error_at_token(
                &t,
                format!("unknown cost symbol `{sym}` (note: `-` inside a word is part of the name; space it for subtraction)"),
            )),
        },
        Tok::LParen => {
            let v = expr(lx)?;
            let close = lx.next_token()?;
            if close.tok != Tok::RParen {
                return Err(lx.error_at_token(&close, format!("expected `)`, found {}", close.tok)));
            }
            Ok(v)
        }
        other => Err(lx.error_at_token(&t, format!("expected a cost, found {other}"))),
    }
}

fn unary(lx: &mut Lexer<'_>) -> Result<i128, ParseError> {
    let t = lx.peek()?;
    match t.tok {
        Tok::Minus => {
            lx.next_token()?;
            Ok(-unary(lx)?)
        }
        Tok::Plus => {
            lx.next_token()?;
            unary(lx)
        }
        _ => factor(lx),
    }
}

fn term(lx: &mut Lexer<'_>) -> Result<i128, ParseError> {
    let mut acc = unary(lx)?;
    loop {
        let t = lx.peek()?;
        match t.tok {
            Tok::Star => {
                lx.next_token()?;
                let rhs = unary(lx)?;
                acc = acc
                    .checked_mul(rhs)
                    .ok_or_else(|| lx.error_at_token(&t, "cost expression overflow".to_string()))?;
            }
            Tok::Slash => {
                lx.next_token()?;
                let rhs = unary(lx)?;
                if rhs == 0 {
                    return Err(lx.error_at_token(&t, "division by zero in cost".to_string()));
                }
                acc /= rhs;
            }
            _ => return Ok(acc),
        }
    }
}

/// Evaluates an expression (no surrounding parentheses consumed).
pub(crate) fn expr(lx: &mut Lexer<'_>) -> Result<i128, ParseError> {
    let mut acc = term(lx)?;
    loop {
        let t = lx.peek()?;
        match t.tok {
            Tok::Plus => {
                lx.next_token()?;
                acc = acc.saturating_add(term(lx)?);
            }
            Tok::Minus => {
                lx.next_token()?;
                acc = acc.saturating_sub(term(lx)?);
            }
            _ => return Ok(acc),
        }
    }
}

/// Parses a parenthesized non-negative cost: `( expr )`.
pub(crate) fn parse_cost(lx: &mut Lexer<'_>) -> Result<Cost, ParseError> {
    let open = lx.next_token()?;
    debug_assert_eq!(open.tok, Tok::LParen, "caller checks for `(`");
    let v = expr(lx)?;
    let close = lx.next_token()?;
    if close.tok != Tok::RParen {
        return Err(lx.error_at_token(&close, format!("expected `)`, found {}", close.tok)));
    }
    if v < 0 {
        return Err(lx.error_at_token(&open, format!("link cost must be non-negative, got {v}")));
    }
    if v > COST_LIMIT {
        return Err(lx.error_at_token(&open, format!("cost {v} out of range")));
    }
    Ok(v as Cost)
}

/// Parses a parenthesized signed bias for `adjust`: `( expr )`.
pub(crate) fn parse_signed(lx: &mut Lexer<'_>) -> Result<i64, ParseError> {
    let open = lx.next_token()?;
    debug_assert_eq!(open.tok, Tok::LParen, "caller checks for `(`");
    let v = expr(lx)?;
    let close = lx.next_token()?;
    if close.tok != Tok::RParen {
        return Err(lx.error_at_token(&close, format!("expected `)`, found {}", close.tok)));
    }
    if v.abs() > COST_LIMIT {
        return Err(lx.error_at_token(&open, format!("adjustment {v} out of range")));
    }
    Ok(v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(text: &str) -> Result<Cost, ParseError> {
        let mut lx = Lexer::new("t", text);
        parse_cost(&mut lx)
    }

    fn eval_signed(text: &str) -> Result<i64, ParseError> {
        let mut lx = Lexer::new("t", text);
        parse_signed(&mut lx)
    }

    #[test]
    fn paper_expressions() {
        assert_eq!(eval("(HOURLY*3)").unwrap(), 1500);
        assert_eq!(eval("(DAILY/2)").unwrap(), 2500);
        assert_eq!(eval("(HOURLY*4)").unwrap(), 2000);
        assert_eq!(eval("(DEDICATED)").unwrap(), 95);
        assert_eq!(eval("(10)").unwrap(), 10);
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(eval("(2+3*4)").unwrap(), 14);
        assert_eq!(eval("((2+3)*4)").unwrap(), 20);
        assert_eq!(eval("(20/2/5)").unwrap(), 2, "division left-associates");
        assert_eq!(eval("(10 - 3 - 2)").unwrap(), 5);
    }

    #[test]
    fn unary_signs() {
        assert_eq!(eval_signed("(-200)").unwrap(), -200);
        assert_eq!(eval_signed("(+35)").unwrap(), 35);
        assert_eq!(eval_signed("(- -5)").unwrap(), 5);
        assert_eq!(eval_signed("(HOURLY - DAILY)").unwrap(), -4500);
    }

    #[test]
    fn negative_intermediate_ok_if_result_nonnegative() {
        assert_eq!(eval("(5 - 10 + 20)").unwrap(), 15);
    }

    #[test]
    fn negative_cost_rejected() {
        let e = eval("(5 - 10)").unwrap_err();
        assert!(e.msg.contains("non-negative"), "{e}");
    }

    #[test]
    fn division_by_zero_rejected() {
        let e = eval("(5/0)").unwrap_err();
        assert!(e.msg.contains("zero"), "{e}");
        let e = eval("(5/(3 - 3))").unwrap_err();
        assert!(e.msg.contains("zero"), "{e}");
    }

    #[test]
    fn unknown_symbol_mentions_hyphen_rule() {
        let e = eval("(HOURLY-5)").unwrap_err();
        assert!(e.msg.contains("HOURLY-5"), "{e}");
        assert!(e.msg.contains("space"), "{e}");
    }

    #[test]
    fn overflow_rejected() {
        assert!(eval("(4294967295 * 4294967295 * 4294967295)").is_err());
        assert!(eval("(4294967296)").is_err(), "beyond COST_LIMIT");
    }

    #[test]
    fn missing_close_paren() {
        let e = eval("(5").unwrap_err();
        assert!(e.msg.contains("expected `)`"), "{e}");
    }

    #[test]
    fn dead_symbol() {
        assert_eq!(eval("(DEAD)").unwrap(), pathalias_graph::INF);
    }
}
