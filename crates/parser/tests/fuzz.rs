//! Robustness properties: the two scanners agree everywhere, and the
//! parser never panics on arbitrary input.

use pathalias_parser::{scan, slow, Tok};
use proptest::prelude::*;

/// Converts a fast token to the slow scanner's owned shape.
fn convert(t: Tok<'_>) -> slow::OwnedTok {
    match t {
        Tok::Name(s) => slow::OwnedTok::Name(s.to_string()),
        Tok::Number(n) => slow::OwnedTok::Number(n),
        Tok::Op(c) => slow::OwnedTok::Op(c),
        Tok::Comma => slow::OwnedTok::Punct(','),
        Tok::LParen => slow::OwnedTok::Punct('('),
        Tok::RParen => slow::OwnedTok::Punct(')'),
        Tok::LBrace => slow::OwnedTok::Punct('{'),
        Tok::RBrace => slow::OwnedTok::Punct('}'),
        Tok::Equals => slow::OwnedTok::Punct('='),
        Tok::Plus => slow::OwnedTok::Punct('+'),
        Tok::Minus => slow::OwnedTok::Punct('-'),
        Tok::Star => slow::OwnedTok::Punct('*'),
        Tok::Slash => slow::OwnedTok::Punct('/'),
        Tok::Eol => slow::OwnedTok::Eol,
        Tok::Eof => slow::OwnedTok::Eof,
    }
}

proptest! {
    // The CI fuzz job cranks case counts via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(256))]

    /// On inputs drawn from the language's alphabet, both scanners
    /// produce the same token stream or the same rejection.
    #[test]
    fn scanners_agree(text in "[ \t\na-z0-9.!@:%,(){}=+*/#_-]{0,200}") {
        let fast = scan::tokenize("f", &text);
        let slow_result = slow::tokenize("f", &text);
        match (fast, slow_result) {
            (Ok(f), Ok(s)) => {
                let f: Vec<slow::OwnedTok> = f.into_iter().map(|t| convert(t.tok)).collect();
                prop_assert_eq!(f, s);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "disagreement: {:?} vs {:?}", f.is_ok(), s.is_ok()),
        }
    }

    /// The parser returns Ok or Err but never panics, on fully
    /// arbitrary input.
    #[test]
    fn parser_never_panics(text in "\\PC{0,300}") {
        let _ = pathalias_parser::parse(&text);
    }

    /// Same, on inputs biased toward nearly-valid statements.
    #[test]
    fn parser_never_panics_nearly_valid(
        text in "[ \t\na-f0-9.!@:%,(){}=+*/#-]{0,300}"
    ) {
        let _ = pathalias_parser::parse(&text);
    }

    /// Scanning is loss-free over names: every name token's text occurs
    /// in the input.
    #[test]
    fn names_are_substrings(text in "[a-z .!,()\n-]{0,120}") {
        if let Ok(tokens) = scan::tokenize("f", &text) {
            for t in tokens {
                if let Tok::Name(n) = t.tok {
                    prop_assert!(text.contains(n));
                }
            }
        }
    }
}
