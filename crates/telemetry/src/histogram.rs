//! Lock-free log2-bucketed latency histogram.
//!
//! Recording a sample is three relaxed atomic adds and one relaxed
//! `fetch_max` — no locks, no allocation — so the histogram can sit
//! directly on the resolve hot path. Buckets are powers of two over
//! nanoseconds: bucket `i` counts samples `v` with `v <= 2^i` ns (and
//! greater than the previous bound), so 48 buckets cover everything
//! from 1 ns to about 3.3 days. Samples beyond the last finite bound
//! are counted only in `count`/`sum` and surface in the `+Inf` bucket
//! at exposition time.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Number of finite log2 buckets; bucket `i` has upper bound `2^i` ns.
pub const BUCKETS: usize = 48;

/// A fixed-size, lock-free latency histogram over nanoseconds.
///
/// All fields are relaxed atomics; concurrent recorders never contend
/// on a lock, and readers take a [`snapshot`](Histogram::snapshot)
/// that repairs the (benign) races between `count` and the buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the finite bucket covering `ns`, or `BUCKETS` when the
    /// sample exceeds every finite bound (it then only shows in `+Inf`).
    fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            (u64::BITS - (ns - 1).leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound (in ns) of finite bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        let idx = Self::bucket_index(ns);
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Relaxed);
        }
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(ns, Relaxed);
        self.max.fetch_max(ns, Relaxed);
    }

    /// Record one sample given as a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest sample recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// A point-in-time copy of the histogram, safe to render.
    ///
    /// Relaxed counters can be observed mid-update (a bucket bumped
    /// before `count`), so the snapshot clamps `count` up to the bucket
    /// total — this keeps the cumulative series monotone and `+Inf`
    /// equal to `_count` no matter how the loads interleave.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Relaxed));
        let bucket_total: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Relaxed).max(bucket_total),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Upper-bound estimate (in ns) of the `q`-quantile, `0.0 ≤ q ≤ 1.0`.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// target sample — the true value is guaranteed to be at most the
    /// returned bound and more than half it (log2 buckets). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a [`Histogram`] taken by [`Histogram::snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples; never less than the sum of `buckets`.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum: u64,
    /// Largest sample in nanoseconds (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Histogram::bucket_bound(i).min(self.max.max(1));
            }
        }
        // Target sample lies beyond every finite bucket: all we know is
        // that it is at most the observed maximum.
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_index_matches_log2_bounds() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        // Every value lands in the bucket whose bound covers it.
        for v in [1u64, 2, 3, 7, 8, 9, 1000, 123_456_789] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "{v} > bound({i})");
            if i > 0 {
                assert!(
                    v > Histogram::bucket_bound(i - 1),
                    "{v} fits bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn count_sum_max_track_samples() {
        let h = Histogram::new();
        for v in [5u64, 10, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_000_015);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn oversized_samples_only_reach_plus_inf() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 0);
        assert_eq!(snap.quantile(0.99), u64::MAX);
    }

    #[test]
    fn concurrent_recording_is_atomic() {
        // N threads × M samples ⇒ _count == N·M, satellite requirement.
        const THREADS: usize = 8;
        const SAMPLES: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..SAMPLES {
                        h.record((t as u64).wrapping_mul(31).wrapping_add(i) % 1_000_000);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS as u64 * SAMPLES);
        assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS as u64 * SAMPLES);
    }

    /// Oracle: exact quantile from a sorted vector. The histogram's
    /// answer must be an upper bound on the true value and the true
    /// value must land in the same log2 bucket.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[target - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases_env(64))]

        /// Satellite requirement: recorded p50/p99 must land in the
        /// true value's bucket range, checked against a sorted-vector
        /// oracle over arbitrary samples.
        #[test]
        fn quantiles_land_in_the_true_bucket(
            samples in proptest::collection::vec(0u64..10_000_000_000, 1..400),
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5f64, 0.9, 0.99] {
                let truth = oracle_quantile(&sorted, q);
                let est = h.quantile(q);
                // The estimate is the bucket's inclusive upper bound
                // (possibly clamped to the observed max), so the true
                // value can never exceed it...
                prop_assert!(truth <= est, "q={q}: truth {truth} > estimate {est}");
                // ...and both must share a bucket: the estimate never
                // overshoots past the bound of the truth's bucket.
                let truth_bound = Histogram::bucket_bound(Histogram::bucket_index(truth).min(BUCKETS - 1));
                prop_assert!(
                    est <= truth_bound.max(truth),
                    "q={q}: estimate {est} beyond truth's bucket bound {truth_bound}"
                );
            }
        }
    }
}
