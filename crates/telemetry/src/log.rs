//! Leveled `key=value` structured logging.
//!
//! One line per event: `ts=<unix_ms> level=<level> event=<name>`
//! followed by caller-supplied fields in order. Values containing
//! spaces, quotes, or `=` are quoted with backslash escapes so lines
//! stay machine-parseable. The level comes from `PATHALIAS_LOG`
//! (`error|warn|info|debug`, default `info`); events above the
//! configured level are dropped before any formatting happens.
//!
//! Writes go to stderr with errors ignored — the daemon must survive a
//! closed stderr the same way it survives a closed stdout.

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Log severity, ordered from most to least urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work: failed reloads, accept errors.
    Error,
    /// Suspicious but survivable: bad requests, watch hiccups.
    Warn,
    /// Lifecycle landmarks: startup, reload success, drain. Default.
    Info,
    /// Per-connection chatter: open/close, watch polls.
    Debug,
}

impl Level {
    /// Parses `error|warn|info|debug` (case-insensitive); anything
    /// else — including unset — falls back to `Info`.
    pub fn parse(s: &str) -> Level {
        match s.to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "debug" => Level::Debug,
            _ => Level::Info,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where finished log lines go.
#[derive(Debug, Clone)]
enum Sink {
    /// Best-effort stderr (write errors ignored).
    Stderr,
    /// In-memory capture for tests.
    Capture(Arc<Mutex<String>>),
    /// Nowhere: every event is dropped before formatting.
    Discard,
}

/// A cheaply-clonable leveled logger.
///
/// Cloning shares the sink, so one logger can be handed to every
/// connection thread. Use [`Logger::from_env`] in the daemon and
/// [`Logger::capture`] in tests that assert on (or assert the absence
/// of) output.
#[derive(Debug, Clone)]
pub struct Logger {
    level: Level,
    sink: Sink,
}

impl Logger {
    /// A stderr logger at an explicit level.
    pub fn new(level: Level) -> Logger {
        Logger {
            level,
            sink: Sink::Stderr,
        }
    }

    /// A stderr logger at the level named by `PATHALIAS_LOG`.
    pub fn from_env() -> Logger {
        Logger::new(Level::parse(
            &std::env::var("PATHALIAS_LOG").unwrap_or_default(),
        ))
    }

    /// A logger that drops everything — the right default for servers
    /// embedded in another program (or a test), where writing to the
    /// host process's stderr uninvited would be rude.
    pub fn off() -> Logger {
        Logger {
            level: Level::Error,
            sink: Sink::Discard,
        }
    }

    /// A logger whose output accumulates in the returned buffer.
    pub fn capture(level: Level) -> (Logger, Arc<Mutex<String>>) {
        let buf = Arc::new(Mutex::new(String::new()));
        (
            Logger {
                level,
                sink: Sink::Capture(Arc::clone(&buf)),
            },
            buf,
        )
    }

    /// The configured threshold level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether an event at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        !matches!(self.sink, Sink::Discard) && level <= self.level
    }

    /// Starts an event at `level`; fields chain, [`Event::emit`] writes.
    pub fn event(&self, level: Level, name: &str) -> Event<'_> {
        let line = if self.enabled(level) {
            let mut line = String::with_capacity(64);
            let _ = write!(
                line,
                "ts={} level={} event={name}",
                crate::unix_ms(),
                level.as_str()
            );
            Some(line)
        } else {
            None
        };
        Event { logger: self, line }
    }

    /// Shorthand for [`Logger::event`] at [`Level::Error`].
    pub fn error(&self, name: &str) -> Event<'_> {
        self.event(Level::Error, name)
    }

    /// Shorthand for [`Logger::event`] at [`Level::Warn`].
    pub fn warn(&self, name: &str) -> Event<'_> {
        self.event(Level::Warn, name)
    }

    /// Shorthand for [`Logger::event`] at [`Level::Info`].
    pub fn info(&self, name: &str) -> Event<'_> {
        self.event(Level::Info, name)
    }

    /// Shorthand for [`Logger::event`] at [`Level::Debug`].
    pub fn debug(&self, name: &str) -> Event<'_> {
        self.event(Level::Debug, name)
    }

    fn write_line(&self, line: &str) {
        match &self.sink {
            Sink::Stderr => {
                // Best-effort: a closed or full stderr must never take
                // the daemon down (mirrors the stdout hardening).
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            Sink::Capture(buf) => {
                if let Ok(mut buf) = buf.lock() {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
            // Unreachable in practice: `enabled` filters Discard
            // events before a line is ever built.
            Sink::Discard => {}
        }
    }
}

/// A log event under construction; dropped silently if below level.
#[derive(Debug)]
pub struct Event<'a> {
    logger: &'a Logger,
    /// `None` when the event is filtered out — fields become no-ops.
    line: Option<String>,
}

impl Event<'_> {
    /// Appends one `key=value` field. Values with spaces, quotes, or
    /// `=` are quoted; embedded newlines are replaced to keep the
    /// one-line-per-event invariant.
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        if let Some(line) = &mut self.line {
            let rendered = value.to_string();
            line.push(' ');
            line.push_str(key);
            line.push('=');
            push_value(line, &rendered);
        }
        self
    }

    /// Writes the finished line to the logger's sink.
    pub fn emit(self) {
        if let Some(line) = &self.line {
            self.logger.write_line(line);
        }
    }
}

/// Appends `value` to `line`, quoting when it would break parsing.
fn push_value(line: &mut String, value: &str) {
    let needs_quote = value.is_empty() || value.contains([' ', '"', '=', '\\', '\n', '\r', '\t']);
    if !needs_quote {
        line.push_str(value);
        return;
    }
    line.push('"');
    for ch in value.chars() {
        match ch {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' | '\r' => line.push_str("\\n"),
            '\t' => line.push_str("\\t"),
            other => line.push(other),
        }
    }
    line.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_error_to_debug() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_all_documented_levels() {
        assert_eq!(Level::parse("error"), Level::Error);
        assert_eq!(Level::parse("WARN"), Level::Warn);
        assert_eq!(Level::parse("info"), Level::Info);
        assert_eq!(Level::parse("debug"), Level::Debug);
        assert_eq!(Level::parse(""), Level::Info);
        assert_eq!(Level::parse("verbose"), Level::Info);
    }

    #[test]
    fn emitted_lines_carry_ts_level_event_and_fields() {
        let (logger, buf) = Logger::capture(Level::Debug);
        logger
            .info("reload")
            .field("map", "east")
            .field("generation", 3)
            .emit();
        let out = buf.lock().unwrap().clone();
        assert!(out.starts_with("ts="), "missing timestamp: {out}");
        assert!(out.contains(" level=info event=reload map=east generation=3\n"));
    }

    #[test]
    fn events_above_the_threshold_are_dropped() {
        let (logger, buf) = Logger::capture(Level::Error);
        logger.warn("bad_request").field("line", "junk").emit();
        logger.info("conn_open").emit();
        logger.debug("watch_poll").emit();
        assert!(buf.lock().unwrap().is_empty());
        logger.error("reload_failed").field("map", "east").emit();
        assert!(buf.lock().unwrap().contains("event=reload_failed map=east"));
    }

    #[test]
    fn off_logger_drops_every_level() {
        let logger = Logger::off();
        assert!(!logger.enabled(Level::Error));
        // Emitting through a dead logger is a harmless no-op.
        logger.error("reload_failed").field("map", "east").emit();
    }

    #[test]
    fn awkward_values_are_quoted_and_escaped() {
        let (logger, buf) = Logger::capture(Level::Info);
        logger
            .info("x")
            .field("spaced", "two words")
            .field("quoted", "say \"hi\"")
            .field("empty", "")
            .field("newline", "a\nb")
            .emit();
        let out = buf.lock().unwrap().clone();
        assert!(out.contains("spaced=\"two words\""));
        assert!(out.contains("quoted=\"say \\\"hi\\\"\""));
        assert!(out.contains("empty=\"\""));
        assert!(out.contains("newline=\"a\\nb\""));
        assert_eq!(out.lines().count(), 1, "event must stay one line: {out}");
    }
}
