//! Dependency-free telemetry primitives for the pathalias daemon.
//!
//! The serving stack needs latency distributions, structured logs, and
//! machine-scrapeable exposition, but the build environment is offline:
//! no `tracing`, no `prometheus`, no `hdrhistogram`. This crate
//! implements the minimal, boring versions of each — small enough to
//! audit, fast enough to sit on the resolve hot path:
//!
//! * [`Histogram`] — a lock-free log2-bucketed latency histogram built
//!   from a fixed array of relaxed [`AtomicU64`](core::sync::atomic::AtomicU64)
//!   buckets plus count/sum/max. Recording is a handful of relaxed
//!   atomic adds; p50/p90/p99 are derived from the bucket bounds at
//!   read time.
//! * [`Logger`] — a leveled `key=value` line logger configured by
//!   `PATHALIAS_LOG=error|warn|info|debug`, replacing the daemon's
//!   scattered `eprintln!`s. Writes are best-effort (errors ignored) so
//!   a closed stderr never kills the daemon.
//! * [`SlowLog`] — a bounded, lock-guarded worst-N record of the
//!   slowest requests (timestamp, map, verb, host, latency, outcome).
//! * [`PromText`] — a Prometheus text-exposition renderer (`# HELP` /
//!   `# TYPE`, counters, gauges, and cumulative `_bucket`/`_sum`/
//!   `_count` histogram series ending in `+Inf`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod log;
mod prom;
mod slowlog;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use log::{Event, Level, Logger};
pub use prom::PromText;
pub use slowlog::{SlowEntry, SlowLog};

/// Milliseconds since the Unix epoch, or 0 if the clock is before it.
///
/// Used to timestamp log lines and slow-query entries; a saturating
/// fallback keeps a badly-set clock from panicking the daemon.
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
