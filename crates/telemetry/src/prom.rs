//! Prometheus text exposition rendering.
//!
//! Implements the slice of the text format the daemon needs: `# HELP`
//! and `# TYPE` comment lines, counter and gauge samples with label
//! sets, and histogram families rendered as cumulative
//! `_bucket{le="..."}` series ending in `+Inf`, plus `_sum` and
//! `_count`. Metric sums are recorded in nanoseconds and exposed in
//! seconds, matching the Prometheus base-unit convention.

use crate::histogram::{HistogramSnapshot, BUCKETS};
use std::fmt::Write as _;

/// Incrementally builds a Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emits `# HELP` and `# TYPE` lines for a metric family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Emits one integer-valued sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.push_series(name, labels, None);
        let _ = writeln!(self.buf, " {value}");
    }

    /// Emits one float-valued sample line.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.push_series(name, labels, None);
        let _ = writeln!(self.buf, " {value}");
    }

    /// Emits a full histogram family body for one label set:
    /// cumulative `_bucket` series (seconds-valued `le`, ending in
    /// `+Inf`), then `_sum` (seconds) and `_count`.
    ///
    /// Empty buckets inside the populated range are emitted, but the
    /// long tail of trailing empty buckets collapses straight to
    /// `+Inf` to keep scrapes compact.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let last_used = (0..BUCKETS).rev().find(|&i| snap.buckets[i] > 0);
        let mut cumulative = 0u64;
        if let Some(last) = last_used {
            for (i, &bucket) in snap.buckets.iter().enumerate().take(last + 1) {
                cumulative += bucket;
                let le = fmt_seconds(crate::Histogram::bucket_bound(i));
                self.push_series(&format!("{name}_bucket"), labels, Some(&le));
                let _ = writeln!(self.buf, " {cumulative}");
            }
        }
        self.push_series(&format!("{name}_bucket"), labels, Some("+Inf"));
        let _ = writeln!(self.buf, " {}", snap.count);
        self.push_series(&format!("{name}_sum"), labels, None);
        let _ = writeln!(self.buf, " {}", fmt_seconds(snap.sum));
        self.push_series(&format!("{name}_count"), labels, None);
        let _ = writeln!(self.buf, " {}", snap.count);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Writes `name{labels,le="..."}` (labels and `le` optional).
    fn push_series(&mut self, name: &str, labels: &[(&str, &str)], le: Option<&str>) {
        self.buf.push_str(name);
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.buf.push('{');
        let mut first = true;
        for (key, value) in labels {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "{key}=\"");
            push_label_value(&mut self.buf, value);
            self.buf.push('"');
        }
        if let Some(le) = le {
            if !first {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "le=\"{le}\"");
        }
        self.buf.push('}');
    }
}

/// Escapes a label value per the exposition format: backslash, quote,
/// and newline.
fn push_label_value(buf: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => buf.push_str("\\\\"),
            '"' => buf.push_str("\\\""),
            '\n' => buf.push_str("\\n"),
            other => buf.push(other),
        }
    }
}

/// Renders a nanosecond quantity as seconds without float rounding
/// surprises: `123_456_789 ns` → `"0.123456789"`, trailing zeros
/// trimmed.
fn fmt_seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return format!("{secs}");
    }
    let mut s = format!("{secs}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn fmt_seconds_is_exact_and_trimmed() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(1), "0.000000001");
        assert_eq!(fmt_seconds(1_500_000_000), "1.5");
        assert_eq!(fmt_seconds(2_000_000_000), "2");
        assert_eq!(fmt_seconds(123_456_789), "0.123456789");
    }

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let mut out = PromText::new();
        out.family("pathalias_queries_total", "counter", "Total queries.");
        out.sample("pathalias_queries_total", &[("map", "east")], 42);
        out.sample("pathalias_up", &[], 1);
        let text = out.finish();
        assert!(text.contains("# HELP pathalias_queries_total Total queries.\n"));
        assert!(text.contains("# TYPE pathalias_queries_total counter\n"));
        assert!(text.contains("pathalias_queries_total{map=\"east\"} 42\n"));
        assert!(text.contains("pathalias_up 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = PromText::new();
        out.sample("m", &[("host", "a\"b\\c\nd")], 1);
        assert!(out.finish().contains("m{host=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    /// Pulls `(le, cumulative)` pairs for one histogram out of the text.
    fn bucket_series(text: &str, name: &str) -> Vec<(String, u64)> {
        text.lines()
            .filter(|l| l.starts_with(&format!("{name}_bucket")))
            .map(|l| {
                let le_start = l.find("le=\"").unwrap() + 4;
                let le_end = l[le_start..].find('"').unwrap() + le_start;
                let value = l.rsplit(' ').next().unwrap().parse().unwrap();
                (l[le_start..le_end].to_owned(), value)
            })
            .collect()
    }

    #[test]
    fn histogram_series_are_cumulative_monotone_and_end_in_inf() {
        let h = Histogram::new();
        for ns in [1u64, 3, 3, 100, 5_000, 5_000, 5_000, 1_000_000] {
            h.record(ns);
        }
        let mut out = PromText::new();
        out.family("lat", "histogram", "Latency.");
        out.histogram("lat", &[("map", "east")], &h.snapshot());
        let text = out.finish();

        let buckets = bucket_series(&text, "lat");
        assert!(!buckets.is_empty());
        assert_eq!(buckets.last().unwrap().0, "+Inf");
        // Cumulative counts never decrease, and +Inf equals _count.
        let mut prev = 0;
        for (_, v) in &buckets {
            assert!(*v >= prev, "non-monotone bucket series in:\n{text}");
            prev = *v;
        }
        assert_eq!(prev, 8);
        assert!(text.contains("lat_count{map=\"east\"} 8\n"));
        // _sum is the exact total in seconds.
        let total_ns: u64 = 1 + 3 + 3 + 100 + 5_000 * 3 + 1_000_000;
        assert!(
            text.contains(&format!(
                "lat_sum{{map=\"east\"}} {}\n",
                fmt_seconds(total_ns)
            )),
            "missing exact _sum in:\n{text}"
        );
        // Finite le bounds strictly increase.
        let finite: Vec<f64> = buckets
            .iter()
            .filter(|(le, _)| le != "+Inf")
            .map(|(le, _)| le.parse().unwrap())
            .collect();
        assert!(finite.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_histogram_renders_only_inf_sum_count() {
        let h = Histogram::new();
        let mut out = PromText::new();
        out.histogram("lat", &[], &h.snapshot());
        let text = out.finish();
        assert_eq!(text, "lat_bucket{le=\"+Inf\"} 0\nlat_sum 0\nlat_count 0\n");
    }
}
