//! Bounded worst-N slow-query log.
//!
//! Keeps the N slowest requests seen since startup under a plain
//! mutex. A relaxed atomic **floor** — the smallest latency currently
//! retained once the log is full — lets the hot path reject fast
//! requests without touching the lock at all: steady-state traffic
//! pays one atomic load per request, and only requests slow enough to
//! qualify (rare, by definition) contend on the mutex.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// One slow request: who asked what, when, and how it went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Milliseconds since the Unix epoch when the request finished.
    pub unix_ms: u64,
    /// Map namespace the request targeted.
    pub map: String,
    /// Protocol verb (`QUERY`, `MQUERY`, `RELOAD`, ...).
    pub verb: &'static str,
    /// Host argument, or an empty string for host-less verbs.
    pub host: String,
    /// Wall-clock latency in nanoseconds.
    pub latency_ns: u64,
    /// `ok`, `no_route`, or `error`.
    pub outcome: &'static str,
}

/// A bounded record of the worst-latency requests.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    /// Admission floor: 0 while the log has room (everything admits),
    /// else the smallest retained latency. Kept in sync under the
    /// entries lock; read lock-free on the hot path.
    floor: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A slow log holding at most `capacity` entries.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lock-free admission check: would a request of `latency_ns` make
    /// it into the log right now? One relaxed load — callers can probe
    /// before paying to build a [`SlowEntry`].
    pub fn would_admit(&self, latency_ns: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let floor = self.floor.load(Relaxed);
        floor == 0 || latency_ns > floor
    }

    /// Offers an entry; it is kept only while it ranks in the worst N.
    pub fn record(&self, entry: SlowEntry) {
        if !self.would_admit(entry.latency_ns) {
            return;
        }
        let Ok(mut entries) = self.entries.lock() else {
            return;
        };
        if entries.len() < self.capacity {
            entries.push(entry);
        } else {
            // Full: evict the current fastest entry iff the newcomer
            // beats it (ties keep the incumbent — it was slower first).
            let Some((slot, fastest)) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.latency_ns)
                .map(|(i, e)| (i, e.latency_ns))
            else {
                return;
            };
            if entry.latency_ns <= fastest {
                return;
            }
            entries[slot] = entry;
        }
        if entries.len() == self.capacity {
            let min = entries.iter().map(|e| e.latency_ns).min().unwrap_or(0);
            self.floor.store(min, Relaxed);
        }
    }

    /// The retained entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let mut entries = match self.entries.lock() {
            Ok(entries) => entries.clone(),
            Err(_) => Vec::new(),
        };
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency_ns));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(latency_ns: u64, host: &str) -> SlowEntry {
        SlowEntry {
            unix_ms: 1_700_000_000_000,
            map: "default".to_owned(),
            verb: "QUERY",
            host: host.to_owned(),
            latency_ns,
            outcome: "ok",
        }
    }

    #[test]
    fn keeps_the_worst_n_sorted_slowest_first() {
        let log = SlowLog::new(3);
        for (lat, host) in [(5, "a"), (50, "b"), (10, "c"), (40, "d"), (1, "e")] {
            log.record(entry(lat, host));
        }
        let snap = log.snapshot();
        let latencies: Vec<u64> = snap.iter().map(|e| e.latency_ns).collect();
        assert_eq!(latencies, vec![50, 40, 10]);
        assert_eq!(snap[0].host, "b");
    }

    #[test]
    fn ties_do_not_evict() {
        let log = SlowLog::new(1);
        log.record(entry(10, "first"));
        log.record(entry(10, "second"));
        assert_eq!(log.snapshot()[0].host, "first");
    }

    #[test]
    fn would_admit_tracks_the_floor_lock_free() {
        let log = SlowLog::new(2);
        assert!(log.would_admit(1));
        log.record(entry(10, "a"));
        assert!(log.would_admit(1), "room left admits everything");
        log.record(entry(20, "b"));
        assert!(!log.would_admit(5));
        assert!(!log.would_admit(10));
        assert!(log.would_admit(15));
        // Evicting the floor entry raises the floor.
        log.record(entry(30, "c"));
        assert!(!log.would_admit(20));
        assert!(log.would_admit(25));
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let log = SlowLog::new(0);
        assert!(!log.would_admit(u64::MAX));
        log.record(entry(99, "a"));
        assert!(log.snapshot().is_empty());
    }
}
