//! PAGF1 corruption handling, property-tested.
//!
//! Mirrors the PADB1 corrupt-file tests: whatever damage a snapshot
//! file takes — bit flips, truncation, inflated counts, random
//! garbage — the reader must answer `Ok` or `Corrupt`, never panic,
//! and never allocate from an attacker-sized header. Damage that
//! leaves the checksum stale is caught by the checksum; damage applied
//! *with* a recomputed checksum must be caught by the structural
//! validators instead.

use pathalias_graph::snapshot::{
    from_bytes, from_bytes_all, to_bytes, to_bytes_all, SnapshotError,
};
use pathalias_graph::{ChIndex, Cost, EdgeId, FrozenGraph, Graph, RouteOp};
use proptest::prelude::*;

/// Builds a deterministic graph from proptest-chosen shape values,
/// exercising adjust biases, deletions, networks and private names.
fn build_graph(hosts: usize, links: &[(usize, usize, u64)], seed: u64) -> Graph {
    let mut g = Graph::with_ignore_case(seed % 2 == 0);
    g.begin_file("gen");
    let ids: Vec<_> = (0..hosts).map(|i| g.node(&format!("host{i}"))).collect();
    for &(from, to, cost) in links {
        let (from, to) = (ids[from % hosts], ids[to % hosts]);
        if from != to {
            g.declare_link(from, to, cost % 40_000, RouteOp::UUCP);
        }
    }
    if hosts > 3 {
        g.adjust_node(ids[1], (seed % 600) as i64 - 300);
        g.delete_node(ids[2]);
        let net = g.node("NETZ");
        g.declare_network(net, &[(ids[0], 50), (ids[3], 90)], RouteOp::UUCP);
        g.begin_file("other");
        g.declare_private("host0");
    }
    g
}

/// Recomputes the documented checksum — the word-wide shift-xor fold
/// `k = (k << 7) ^ (k >> 57) ^ word` over the file with the checksum
/// field read as zero, zero-padding and length-tagging a trailing
/// partial word — from the format spec alone. An independent
/// implementation, so this test also cross-checks the documented
/// algorithm against the writer's.
fn retamp(mut bytes: Vec<u8>) -> Vec<u8> {
    let mut zeroed = bytes.clone();
    zeroed[32..40].fill(0);
    let mut k = 0u64;
    let mut words = zeroed.chunks_exact(8);
    for w in &mut words {
        k = (k << 7) ^ (k >> 57) ^ u64::from_le_bytes(w.try_into().unwrap());
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 8];
        padded[..tail.len()].copy_from_slice(tail);
        k = (k << 7) ^ (k >> 57) ^ u64::from_le_bytes(padded);
        k = (k << 7) ^ (k >> 57) ^ tail.len() as u64;
    }
    bytes[32..40].copy_from_slice(&k.to_le_bytes());
    bytes
}

/// Serializes the graph with every optional section present — the
/// reverse CSR and a contraction hierarchy over the folded edge
/// costs — so the multi-section tests damage the widest layout.
fn all_sections(f: &FrozenGraph) -> Vec<u8> {
    let weights: Vec<Cost> = (0..f.edge_count())
        .map(|e| f.edge_cost(EdgeId::from_raw(e as u32)))
        .collect();
    let rev = f.reverse();
    let ch = ChIndex::build(f, &weights);
    to_bytes_all(f, Some(&rev), Some(&ch))
}

proptest! {
    // The CI fuzz job cranks case counts via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(12))]

    /// Any single bit flip anywhere in the file is rejected as
    /// `Corrupt` (the checksum guarantees this), never a panic.
    #[test]
    fn bit_flips_are_corrupt(
        hosts in 4usize..40,
        links in proptest::collection::vec((0usize..40, 0usize..40, 0u64..50_000), 1..80),
        seed in 0u64..1_000,
        positions in proptest::collection::vec((0usize..1_000_000, 0u32..8), 1..40),
    ) {
        let bytes = to_bytes(&build_graph(hosts, &links, seed).freeze());
        for &(pos, bit) in &positions {
            let mut bad = bytes.clone();
            let pos = pos % bad.len();
            bad[pos] ^= 1 << bit;
            match from_bytes(&bad) {
                Err(SnapshotError::Corrupt(_)) => {}
                Ok(_) => panic!("bit flip at byte {pos} bit {bit} accepted"),
                Err(e) => panic!("bit flip at byte {pos} bit {bit}: unexpected {e:?}"),
            }
        }
    }

    /// Every truncation of a valid file is `Corrupt` — even where the
    /// cut lands exactly on a section boundary.
    #[test]
    fn truncations_are_corrupt(
        hosts in 4usize..24,
        links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..50_000), 1..40),
        seed in 0u64..1_000,
        cuts in proptest::collection::vec(0usize..1_000_000, 1..30),
    ) {
        let bytes = to_bytes(&build_graph(hosts, &links, seed).freeze());
        for &cut in &cuts {
            let cut = cut % bytes.len();
            match from_bytes(&bytes[..cut]) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("truncated to {cut} bytes: expected Corrupt, got {other:?}"),
            }
        }
    }

    /// Inflating any header count — node, edge, name-blob or sidecar —
    /// behind a *recomputed* checksum is rejected by the size equation
    /// before anything is allocated. (If the reader allocated first, a
    /// forged count of u32::MAX would ask for ~70 GB.)
    #[test]
    fn inflated_counts_are_corrupt_without_allocating(
        hosts in 4usize..24,
        links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..50_000), 1..40),
        seed in 0u64..1_000,
        inflate in 1u64..u32::MAX as u64,
    ) {
        let bytes = to_bytes(&build_graph(hosts, &links, seed).freeze());
        // (field offset, width) of the four header counts.
        for &(at, width) in &[(8usize, 4usize), (12, 4), (16, 8), (24, 4)] {
            let mut bad = bytes.clone();
            let old = if width == 4 {
                u32::from_le_bytes(bad[at..at + 4].try_into().unwrap()) as u64
            } else {
                u64::from_le_bytes(bad[at..at + 8].try_into().unwrap())
            };
            let new = old.saturating_add(inflate);
            if width == 4 {
                bad[at..at + 4].copy_from_slice(&(new.min(u32::MAX as u64) as u32).to_le_bytes());
            } else {
                bad[at..at + 8].copy_from_slice(&new.to_le_bytes());
            }
            match from_bytes(&retamp(bad)) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("count at {at} inflated by {inflate}: got {other:?}"),
            }
        }
    }

    /// Multi-section files (reverse CSR + contraction hierarchy) are
    /// held to the same standard as the core image: any bit flip or
    /// truncation is `Corrupt` for the full reader — and for the
    /// legacy reader, which must reject damage even inside sections
    /// it would otherwise skip, because the checksum covers the whole
    /// file.
    #[test]
    fn multi_section_damage_is_corrupt(
        hosts in 4usize..24,
        links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..50_000), 1..40),
        seed in 0u64..1_000,
        positions in proptest::collection::vec((0usize..1_000_000, 0u32..8), 1..20),
        cuts in proptest::collection::vec(0usize..1_000_000, 1..15),
    ) {
        let bytes = all_sections(&build_graph(hosts, &links, seed).freeze());
        prop_assert!(from_bytes_all(&bytes).is_ok());
        for &(pos, bit) in &positions {
            let mut bad = bytes.clone();
            let pos = pos % bad.len();
            bad[pos] ^= 1 << bit;
            for result in [from_bytes_all(&bad).map(|_| ()), from_bytes(&bad).map(|_| ())] {
                match result {
                    Err(SnapshotError::Corrupt(_)) => {}
                    other => panic!("flip at byte {pos} bit {bit}: got {other:?}"),
                }
            }
        }
        for &cut in &cuts {
            let cut = cut % bytes.len();
            match from_bytes_all(&bytes[..cut]) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("truncated to {cut} bytes: got {other:?}"),
            }
        }
    }

    /// A file claiming a section bit this reader does not implement —
    /// the forward-compat shape a new-format file presents to an old
    /// binary — is a clean unknown-flag `Corrupt`, never a misparse,
    /// no matter which future bit and which sections are present.
    #[test]
    fn future_section_flags_reject_cleanly(
        hosts in 4usize..24,
        links in proptest::collection::vec((0usize..24, 0usize..24, 0u64..50_000), 1..40),
        seed in 0u64..1_000,
        bit in 2u32..32,
        with_known in any::<bool>(),
    ) {
        let f = build_graph(hosts, &links, seed).freeze();
        let mut bytes = if with_known { all_sections(&f) } else { to_bytes(&f) };
        let old = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        bytes[28..32].copy_from_slice(&(old | 1 << bit).to_le_bytes());
        let bytes = retamp(bytes);
        for result in [from_bytes_all(&bytes).map(|_| ()), from_bytes(&bytes).map(|_| ())] {
            match result {
                Err(SnapshotError::Corrupt(why)) => {
                    prop_assert!(why.contains("section flags"), "bit {bit}: got {why:?}")
                }
                other => panic!("future flag bit {bit} accepted: {other:?}"),
            }
        }
    }

    /// Structured tampering of a multi-section file behind a fresh
    /// checksum never panics — the section validators reject or the
    /// damage is semantically harmless, but nothing crashes.
    #[test]
    fn multi_section_tampering_never_panics(
        tampers in proptest::collection::vec((0usize..1_000_000, any::<u8>()), 1..20),
    ) {
        let base = all_sections(
            &build_graph(6, &[(0, 1, 10), (1, 2, 20), (3, 4, 30), (4, 5, 7)], 7).freeze(),
        );
        let mut bad = base.clone();
        for &(pos, byte) in &tampers {
            bad[pos % base.len()] = byte;
        }
        let _ = from_bytes_all(&retamp(bad));
    }

    /// Random garbage — raw, magic-prefixed, or a tampered valid file
    /// with a recomputed checksum — never panics the reader.
    #[test]
    fn garbage_never_panics(
        raw in proptest::collection::vec(any::<u8>(), 0..400),
        tampers in proptest::collection::vec((0usize..1_000_000, any::<u8>()), 0..20),
    ) {
        let _ = from_bytes(&raw);
        let mut prefixed = b"PAGF1\n".to_vec();
        prefixed.extend_from_slice(&raw);
        let _ = from_bytes(&prefixed);
        // Structured tampering behind a fresh checksum: only the
        // structural validators stand between these bytes and the
        // decoder.
        let base = to_bytes(&build_graph(6, &[(0, 1, 10), (1, 2, 20), (3, 4, 30)], 7).freeze());
        let mut bad = base.clone();
        for &(pos, byte) in &tampers {
            bad[pos % base.len()] = byte;
        }
        let _ = from_bytes(&retamp(bad));
    }
}
