//! Node and link flag sets.
//!
//! The original packed these into C bitfields; we hand-roll small
//! transparent bitsets (no external bitflags dependency) with the same
//! vocabulary the paper uses.

use std::fmt;

macro_rules! flagset {
    (
        $(#[$meta:meta])*
        $name:ident : $repr:ty { $( $(#[$fmeta:meta])* $flag:ident = $bit:expr ),+ $(,)? }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
        pub struct $name($repr);

        impl $name {
            $(
                $(#[$fmeta])*
                pub const $flag: $name = $name(1 << $bit);
            )+

            /// The empty flag set.
            pub const fn empty() -> Self {
                $name(0)
            }

            /// Whether every flag in `other` is set in `self`.
            #[inline]
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Whether any flag in `other` is set in `self`.
            #[inline]
            pub const fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }

            /// Sets the flags in `other`.
            #[inline]
            pub fn insert(&mut self, other: $name) {
                self.0 |= other.0;
            }

            /// Clears the flags in `other`.
            #[inline]
            pub fn remove(&mut self, other: $name) {
                self.0 &= !other.0;
            }

            /// Whether no flags are set.
            #[inline]
            pub const fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// The raw bit representation (what the on-disk snapshot
            /// stores).
            #[inline]
            pub const fn bits(self) -> $repr {
                self.0
            }

            /// Rebuilds a flag set from raw bits. Bits outside the
            /// defined vocabulary yield `None` — a snapshot file must
            /// not smuggle in flags this build does not know.
            #[inline]
            pub const fn from_bits(bits: $repr) -> Option<Self> {
                let known: $repr = $( (1 << $bit) )|+;
                if bits & !known != 0 {
                    None
                } else {
                    Some($name(bits))
                }
            }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                $name(self.0 | rhs.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                $(
                    if self.contains($name::$flag) {
                        if !first { write!(f, "|")?; }
                        write!(f, stringify!($flag))?;
                        first = false;
                    }
                )+
                if first {
                    write!(f, "(none)")?;
                }
                Ok(())
            }
        }
    };
}

flagset! {
    /// Per-node flags.
    NodeFlags: u16 {
        /// The node is a network placeholder (declared with `name = {...}`).
        NET = 0,
        /// The node is a domain (name begins with `.`). Domains are
        /// networks that are always gatewayed and print specially.
        DOMAIN = 1,
        /// Declared `private`: file-scoped, suppressed from output.
        PRIVATE = 2,
        /// Declared `dead`: may be a destination, never a relay.
        DEAD = 3,
        /// Declared `delete`: removed from mapping and output entirely.
        DELETED = 4,
        /// Declared `gated`: entering requires a gateway (domains are
        /// implicitly gated without this flag).
        GATED = 5,
        /// Has a cost adjustment from an `adjust` declaration.
        ADJUSTED = 6,
    }
}

flagset! {
    /// Per-link flags.
    LinkFlags: u16 {
        /// Zero-cost alias pairing edge ("aliases are a property of
        /// edges, not vertices").
        ALIAS = 0,
        /// Member-to-network entry edge created by a `net = {...}`
        /// declaration; carries the declared cost.
        NET_IN = 1,
        /// Network-to-member exit edge created by a `net = {...}`
        /// declaration; costs zero ("you pay to get onto a network, but
        /// you get off for free").
        NET_OUT = 2,
        /// Declared a gateway by the `gateway` command.
        GATEWAY = 3,
        /// Declared `dead`: last-resort, costed at INF extra.
        DEAD = 4,
        /// Declared `delete`: ignored by mapping and printing.
        DELETED = 5,
        /// Invented reverse edge from the back-link pass for otherwise
        /// unreachable hosts.
        BACK = 6,
    }
}

impl LinkFlags {
    /// Whether the link was written explicitly in the input, as opposed
    /// to being implied by a network declaration, an alias, or the
    /// back-link pass. Explicit links into a gatewayed network make the
    /// writer a gateway (this is how `seismo .edu(DEDICATED)` declares
    /// seismo a gateway in the paper's figure).
    pub fn is_explicit(self) -> bool {
        !self
            .intersects(LinkFlags::ALIAS | LinkFlags::NET_IN | LinkFlags::NET_OUT | LinkFlags::BACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_insert() {
        let mut f = NodeFlags::empty();
        assert!(f.is_empty());
        f.insert(NodeFlags::NET);
        assert!(f.contains(NodeFlags::NET));
        assert!(!f.contains(NodeFlags::DOMAIN));
        f.insert(NodeFlags::DOMAIN);
        assert!(f.contains(NodeFlags::NET | NodeFlags::DOMAIN));
        f.remove(NodeFlags::NET);
        assert!(!f.contains(NodeFlags::NET));
        assert!(f.contains(NodeFlags::DOMAIN));
    }

    #[test]
    fn intersects_vs_contains() {
        let f = NodeFlags::NET | NodeFlags::PRIVATE;
        assert!(f.intersects(NodeFlags::PRIVATE | NodeFlags::DEAD));
        assert!(!f.contains(NodeFlags::PRIVATE | NodeFlags::DEAD));
    }

    #[test]
    fn explicitness() {
        assert!(LinkFlags::empty().is_explicit());
        assert!(LinkFlags::GATEWAY.is_explicit());
        assert!((LinkFlags::DEAD | LinkFlags::GATEWAY).is_explicit());
        assert!(!LinkFlags::ALIAS.is_explicit());
        assert!(!LinkFlags::NET_IN.is_explicit());
        assert!(!LinkFlags::NET_OUT.is_explicit());
        assert!(!LinkFlags::BACK.is_explicit());
    }

    #[test]
    fn bits_round_trip_and_reject_unknown() {
        let f = LinkFlags::ALIAS | LinkFlags::BACK;
        assert_eq!(LinkFlags::from_bits(f.bits()), Some(f));
        assert_eq!(NodeFlags::from_bits(0), Some(NodeFlags::empty()));
        // Bit 15 is outside both vocabularies.
        assert_eq!(LinkFlags::from_bits(1 << 15), None);
        assert_eq!(NodeFlags::from_bits(1 << 15), None);
    }

    #[test]
    fn debug_output() {
        let f = LinkFlags::ALIAS | LinkFlags::DEAD;
        let s = format!("{f:?}");
        assert!(s.contains("ALIAS") && s.contains("DEAD"));
        assert_eq!(format!("{:?}", NodeFlags::empty()), "(none)");
    }
}
