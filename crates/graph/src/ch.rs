//! Contraction hierarchy: the freeze-time shortcut graph behind the
//! fast `PATH` tier.
//!
//! A contraction hierarchy orders the nodes by importance and
//! *contracts* them one at a time: when a node `v` is removed, any
//! shortest path `u → v → w` that has no equally cheap detour around
//! `v` (established by a bounded *witness* search) is preserved by a
//! shortcut edge `u → w` whose weight is the sum of the two halves.
//! After all nodes are contracted, every edge — original or shortcut —
//! either *rises* (head ranked above tail) or *falls*, and any
//! shortest `src → dst` distance is realized by a path that first
//! rises from `src` and then falls into `dst`. Queries therefore meet
//! in the middle: a forward search over the upward half from `src`, a
//! backward search over the downward half from `dst`, both confined to
//! tiny cones near the top of the hierarchy.
//!
//! # What the weights mean
//!
//! [`ChIndex::build`] takes one weight per frozen edge, supplied by
//! the caller. The router derives these from its cost model as a
//! **source-independent lower bound** on what the mapper would charge
//! for the edge (state-dependent penalties bounded to zero — see
//! `pathalias-router`). CH distances over such weights lower-bound the
//! mapper's true path costs, which is exactly what the certified
//! point-to-point search needs: the hierarchy *accelerates* the exact
//! search by bounding it, it never replaces the mapper's arithmetic.
//!
//! # Trust model
//!
//! A [`ChIndex`] loaded from a snapshot section is structurally
//! validated ([`ChIndex::validate_against`]): rank is a permutation,
//! rows are monotone, every original edge really exists in the frozen
//! CSR with the recorded endpoints, every shortcut nests (middle node
//! ranked below both endpoints) and carries the sum of its halves.
//! Those checks guarantee every CH path corresponds to a real path of
//! equal weight. *Completeness* — that no shortcut is missing — cannot
//! be re-verified cheaply and is trusted the same way edge costs are:
//! the checksum catches accidental corruption, and the router's parity
//! suite plus the CH-vs-no-CH end-to-end diff guard the construction
//! itself.

use crate::cost::Cost;
use crate::frozen::{EdgeId, FrozenGraph};
use crate::graph::NodeId;
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// Sentinel in the second child slot marking an original (non-shortcut)
/// edge: its first slot is then a forward [`EdgeId`], not a CH ref.
pub const CH_ORIGINAL: u32 = u32::MAX;

/// Settle budget for the witness search run while actually contracting:
/// an inconclusive search just adds the (always-safe) shortcut. Sized
/// generously on purpose — a budget that gives up early on hub-heavy
/// worlds floods the hierarchy with unwitnessed shortcuts, and the
/// densified core then makes every later contraction (and every query
/// over the fat CSR) slower; paying for decisive searches shrinks the
/// final index *and* the total build time.
const WITNESS_SETTLE_BUDGET: usize = 2048;
/// Smaller settle budget for the priority simulation, which only needs
/// an estimate of how many shortcuts a contraction would add.
const SIM_SETTLE_BUDGET: usize = 256;
/// Above this many `in × out` pairs the simulation skips witness
/// searches entirely and pessimistically assumes every pair needs a
/// shortcut — dense hubs float to the top of the hierarchy either way.
const SIM_PAIR_CAP: usize = 512;

/// A contraction hierarchy over a [`FrozenGraph`] and a caller-supplied
/// per-edge weight vector.
///
/// Storage is two CSR halves sharing one *ref* space. Refs
/// `0..up_count` are **upward** edges (head ranked above tail), grouped
/// by tail so a forward search can relax everything rising out of a
/// node. Refs `up_count..` are **downward** edges stored *transposed* —
/// grouped by head — so a backward search from the destination can walk
/// everything falling into a node. Each ref carries two child slots:
/// `(edge_id, CH_ORIGINAL)` for an original edge, or the refs of its
/// two halves for a shortcut, which is how [`ChIndex::unpack_into`]
/// recovers concrete [`EdgeId`] paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChIndex {
    /// Contraction order: `rank[v]` is the step at which `v` was
    /// contracted; higher rank = more important.
    pub(crate) rank: Vec<u32>,
    /// Upward CSR row starts by tail node (`n + 1` entries).
    pub(crate) up_row: Vec<u32>,
    /// Head of each upward edge.
    pub(crate) up_to: Vec<u32>,
    /// Weight of each upward edge.
    pub(crate) up_w: Vec<Cost>,
    /// First child slot of each upward edge (see [`CH_ORIGINAL`]).
    pub(crate) up_a: Vec<u32>,
    /// Second child slot of each upward edge.
    pub(crate) up_b: Vec<u32>,
    /// Downward CSR row starts by *head* node (`n + 1` entries).
    pub(crate) down_row: Vec<u32>,
    /// Tail of each downward edge.
    pub(crate) down_from: Vec<u32>,
    /// Weight of each downward edge.
    pub(crate) down_w: Vec<Cost>,
    /// First child slot of each downward edge.
    pub(crate) down_a: Vec<u32>,
    /// Second child slot of each downward edge.
    pub(crate) down_b: Vec<u32>,
}

/// One hierarchy edge as seen from a query: the far endpoint, the
/// lower-bound weight, and the global ref for unpacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChEdge {
    /// The endpoint on the other side (head for upward edges iterated
    /// by tail, tail for downward edges iterated by head).
    pub node: NodeId,
    /// The edge weight in the metric the hierarchy was built over.
    pub weight: Cost,
    /// Global ref, usable with [`ChIndex::unpack_into`].
    pub edge: u32,
}

impl ChIndex {
    /// Builds a hierarchy over `f` using one `weights` entry per frozen
    /// edge (self-loops are ignored; parallel edges keep the cheapest).
    ///
    /// Node order is chosen greedily by *edge difference* (shortcuts a
    /// contraction would add minus edges it removes) plus a contracted-
    /// neighbors depth term, with lazy re-evaluation on a priority
    /// heap — the standard construction heuristic.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != f.edge_count()`.
    pub fn build(f: &FrozenGraph, weights: &[Cost]) -> ChIndex {
        assert_eq!(weights.len(), f.edge_count(), "one weight per frozen edge");
        let n = f.node_count();
        let mut b = Builder::new(n);
        b.seed(f, weights);
        b.contract_all();
        b.assemble(n)
    }

    /// Number of nodes the hierarchy covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Number of upward edges.
    #[inline]
    pub fn up_count(&self) -> usize {
        self.up_to.len()
    }

    /// Number of downward edges.
    #[inline]
    pub fn down_count(&self) -> usize {
        self.down_from.len()
    }

    /// Number of shortcut (non-original) edges across both halves.
    pub fn shortcut_count(&self) -> usize {
        self.up_b.iter().filter(|&&b| b != CH_ORIGINAL).count()
            + self.down_b.iter().filter(|&&b| b != CH_ORIGINAL).count()
    }

    /// Contraction rank of `v`; higher ranks were contracted later and
    /// sit nearer the top of the hierarchy.
    #[inline]
    pub fn rank_of(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// Iterates the upward edges out of `u` (heads ranked above `u`).
    #[inline]
    pub fn up_edges(&self, u: NodeId) -> impl Iterator<Item = ChEdge> + '_ {
        let i = u.index();
        let r = self.up_row[i] as usize..self.up_row[i + 1] as usize;
        r.map(move |s| ChEdge {
            node: NodeId::from_raw(self.up_to[s]),
            weight: self.up_w[s],
            edge: s as u32,
        })
    }

    /// Iterates the downward edges *into* `v` (tails ranked above `v`):
    /// the transposed half a backward search from a destination walks.
    #[inline]
    pub fn down_into(&self, v: NodeId) -> impl Iterator<Item = ChEdge> + '_ {
        let i = v.index();
        let r = self.down_row[i] as usize..self.down_row[i + 1] as usize;
        let up = self.up_to.len();
        r.map(move |s| ChEdge {
            node: NodeId::from_raw(self.down_from[s]),
            weight: self.down_w[s],
            edge: (up + s) as u32,
        })
    }

    #[inline]
    fn parts(&self, r: usize) -> Option<(u32, u32)> {
        let up = self.up_to.len();
        if r < up {
            Some((self.up_a[r], self.up_b[r]))
        } else {
            let j = r - up;
            self.down_a.get(j).map(|&a| (a, self.down_b[j]))
        }
    }

    #[inline]
    fn weight_of(&self, r: usize) -> Cost {
        let up = self.up_to.len();
        if r < up {
            self.up_w[r]
        } else {
            self.down_w[r - up]
        }
    }

    /// Expands ref `r` into the forward [`EdgeId`] sequence it stands
    /// for, appending to `out` in path order. Iterative, with a step
    /// budget so hostile (structurally valid but degenerate) data
    /// cannot hang a query: on budget exhaustion or a dangling ref the
    /// partial expansion is discarded and `false` is returned — callers
    /// treat that as "no CH answer" and fall back.
    pub fn unpack_into(&self, r: u32, out: &mut Vec<EdgeId>) -> bool {
        let total = self.up_to.len() + self.down_from.len();
        let budget = 8 * total + 32;
        let mark = out.len();
        let mut stack: Vec<u32> = Vec::with_capacity(16);
        stack.push(r);
        let mut steps = 0usize;
        while let Some(r) = stack.pop() {
            steps += 1;
            if steps > budget {
                out.truncate(mark);
                return false;
            }
            let Some((a, b)) = self.parts(r as usize) else {
                out.truncate(mark);
                return false;
            };
            if b == CH_ORIGINAL {
                out.push(EdgeId::from_raw(a));
            } else {
                // Pop order: first half before second half.
                stack.push(b);
                stack.push(a);
            }
        }
        true
    }

    /// Structural validation against the graph the hierarchy claims to
    /// cover, for data loaded from a snapshot section: lengths, rank
    /// permutation, monotone rows, rising/falling direction per half,
    /// original edges present in the forward CSR with matching
    /// endpoints, shortcuts properly nested (middle node ranked below
    /// both endpoints, halves chaining tail→mid→head) and weighted as
    /// the saturating sum of their halves. See the module docs for
    /// what this deliberately does *not* prove (completeness).
    pub fn validate_against(&self, f: &FrozenGraph) -> bool {
        let n = f.node_count();
        let up = self.up_to.len();
        let down = self.down_from.len();
        if self.rank.len() != n
            || self.up_row.len() != n + 1
            || self.down_row.len() != n + 1
            || self.up_w.len() != up
            || self.up_a.len() != up
            || self.up_b.len() != up
            || self.down_w.len() != down
            || self.down_a.len() != down
            || self.down_b.len() != down
            || self.up_row[0] != 0
            || self.down_row[0] != 0
            || self.up_row[n] as usize != up
            || self.down_row[n] as usize != down
        {
            return false;
        }
        let mut seen = vec![false; n];
        for &r in &self.rank {
            let Some(s) = seen.get_mut(r as usize) else {
                return false;
            };
            if *s {
                return false;
            }
            *s = true;
        }
        // Monotonicity over both whole tables first: with the final
        // entries pinned to up/down above, this bounds every row before
        // anything indexes through them (this runs on untrusted bytes).
        for v in 0..n {
            if self.up_row[v] > self.up_row[v + 1] || self.down_row[v] > self.down_row[v + 1] {
                return false;
            }
        }
        for &h in &self.up_to {
            if h as usize >= n {
                return false;
            }
        }
        for &t in &self.down_from {
            if t as usize >= n {
                return false;
            }
        }
        // Endpoints of every ref, derived from row ownership.
        let total = up + down;
        let mut tail = vec![0u32; total];
        let mut head = vec![0u32; total];
        for v in 0..n {
            for s in self.up_row[v] as usize..self.up_row[v + 1] as usize {
                tail[s] = v as u32;
                head[s] = self.up_to[s];
            }
            for s in self.down_row[v] as usize..self.down_row[v + 1] as usize {
                tail[up + s] = self.down_from[s];
                head[up + s] = v as u32;
            }
        }
        for r in 0..total {
            let (t, h) = (tail[r] as usize, head[r] as usize);
            let rising = r < up;
            if rising {
                if self.rank[t] >= self.rank[h] {
                    return false;
                }
            } else if self.rank[t] <= self.rank[h] {
                return false;
            }
            let (a, b) = self.parts(r).expect("r < total");
            if b == CH_ORIGINAL {
                let Some(fe) = f.edges.get(a as usize) else {
                    return false;
                };
                if fe.to as usize != h || !f.row(t).contains(&(a as usize)) {
                    return false;
                }
            } else {
                let (ai, bi) = (a as usize, b as usize);
                if ai >= total || bi >= total {
                    return false;
                }
                if tail[ai] as usize != t || head[bi] as usize != h || head[ai] != tail[bi] {
                    return false;
                }
                let mid = head[ai] as usize;
                if self.rank[mid] >= self.rank[t] || self.rank[mid] >= self.rank[h] {
                    return false;
                }
                if self.weight_of(r) != self.weight_of(ai).saturating_add(self.weight_of(bi)) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks that every original edge in the hierarchy carries exactly
    /// the given weight for its [`EdgeId`] — how an engine verifies a
    /// loaded hierarchy was built over *its* cost model before trusting
    /// its bounds. Shortcut weights are covered transitively (each is
    /// the sum of its halves, enforced by [`ChIndex::validate_against`]).
    pub fn weights_consistent(&self, weights: &[Cost]) -> bool {
        let total = self.up_to.len() + self.down_from.len();
        for r in 0..total {
            let Some((a, b)) = self.parts(r) else {
                return false;
            };
            if b == CH_ORIGINAL {
                match weights.get(a as usize) {
                    Some(&w) if w == self.weight_of(r) => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

/// One edge of the construction-time core graph. `a`/`b` follow the
/// same convention as the final arrays, except that shortcut children
/// are *temp* ids until [`Builder::assemble`] remaps them to refs.
struct Temp {
    from: u32,
    to: u32,
    w: Cost,
    a: u32,
    b: u32,
}

struct Builder {
    temps: Vec<Temp>,
    /// Live adjacency (temp ids by tail / by head); entries pointing at
    /// contracted endpoints are skipped lazily rather than removed.
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
    contracted: Vec<bool>,
    rank: Vec<u32>,
    /// Contracted-neighbors depth term of the priority heuristic.
    depth: Vec<u32>,
    // Witness-search scratch, generation-stamped so each search starts
    // clean without clearing the arrays.
    wit_dist: Vec<Cost>,
    wit_stamp: Vec<u32>,
    wit_gen: u32,
    wit_heap: BinaryHeap<Reverse<(Cost, u32)>>,
    // Multi-target marks for one witness search deciding many pairs.
    tgt_limit: Vec<Cost>,
    tgt_idx: Vec<u32>,
    tgt_stamp: Vec<u32>,
    wit_mark: Vec<bool>,
}

impl Builder {
    fn new(n: usize) -> Builder {
        Builder {
            temps: Vec::new(),
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            contracted: vec![false; n],
            rank: vec![0; n],
            depth: vec![0; n],
            wit_dist: vec![0; n],
            wit_stamp: vec![0; n],
            wit_gen: 0,
            wit_heap: BinaryHeap::new(),
            tgt_limit: vec![0; n],
            tgt_idx: vec![0; n],
            tgt_stamp: vec![0; n],
            wit_mark: Vec::new(),
        }
    }

    /// Seeds the core graph: the cheapest forward edge per distinct
    /// `(tail, head)` pair, self-loops dropped. The two-pass shape (pick
    /// in a map, emit in row order) keeps temp ids deterministic.
    fn seed(&mut self, f: &FrozenGraph, weights: &[Cost]) {
        let n = f.node_count();
        let mut best: HashMap<u32, usize> = HashMap::new();
        for u in 0..n {
            best.clear();
            for e in f.row(u) {
                let v = f.edges[e].to;
                if v as usize == u {
                    continue;
                }
                match best.entry(v) {
                    Entry::Occupied(mut o) => {
                        if weights[e] < weights[*o.get()] {
                            o.insert(e);
                        }
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(e);
                    }
                }
            }
            for e in f.row(u) {
                if best.get(&f.edges[e].to) == Some(&e) {
                    let t = self.temps.len() as u32;
                    self.temps.push(Temp {
                        from: u as u32,
                        to: f.edges[e].to,
                        w: weights[e],
                        a: e as u32,
                        b: CH_ORIGINAL,
                    });
                    self.out[u].push(t);
                    self.inn[f.edges[e].to as usize].push(t);
                }
            }
        }
    }

    /// Live in-neighbors of `v` as `(tail, weight, temp)` with parallel
    /// edges collapsed to the cheapest, sorted by tail for determinism.
    fn live_in(&self, v: usize) -> Vec<(u32, Cost, u32)> {
        let mut best: HashMap<u32, (Cost, u32)> = HashMap::new();
        for &t in &self.inn[v] {
            let e = &self.temps[t as usize];
            if self.contracted[e.from as usize] {
                continue;
            }
            match best.entry(e.from) {
                Entry::Occupied(mut o) => {
                    if (e.w, t) < *o.get() {
                        o.insert((e.w, t));
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert((e.w, t));
                }
            }
        }
        let mut live: Vec<_> = best.into_iter().map(|(u, (w, t))| (u, w, t)).collect();
        live.sort_unstable_by_key(|&(u, _, _)| u);
        live
    }

    /// Live out-neighbors of `v`, mirror of [`Builder::live_in`].
    fn live_out(&self, v: usize) -> Vec<(u32, Cost, u32)> {
        let mut best: HashMap<u32, (Cost, u32)> = HashMap::new();
        for &t in &self.out[v] {
            let e = &self.temps[t as usize];
            if self.contracted[e.to as usize] {
                continue;
            }
            match best.entry(e.to) {
                Entry::Occupied(mut o) => {
                    if (e.w, t) < *o.get() {
                        o.insert((e.w, t));
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert((e.w, t));
                }
            }
        }
        let mut live: Vec<_> = best.into_iter().map(|(u, (w, t))| (u, w, t)).collect();
        live.sort_unstable_by_key(|&(u, _, _)| u);
        live
    }

    /// One bounded local Dijkstra from `u` through the live core
    /// (skipping `excluded`) that decides *every* `(u, out)` pair of a
    /// contraction at once: `witnessed[i]` is set when a path to
    /// `outs[i]` of cost at most `wi + outs[i].weight` is proven. Each
    /// target is decided at settle time (exact within the searched
    /// core), and the search stops once all targets are settled, the
    /// frontier passes the largest limit, or the settle budget runs
    /// out. Targets left undecided stay `false` — inconclusive searches
    /// just cost an extra shortcut, never correctness. Running one
    /// search per in-neighbor instead of one per pair is what keeps
    /// contraction of high-degree hubs (network stars) tractable.
    fn witness_many(
        &mut self,
        u: usize,
        wi: Cost,
        outs: &[(u32, Cost, u32)],
        excluded: usize,
        base_budget: usize,
        witnessed: &mut [bool],
    ) {
        self.wit_gen = self.wit_gen.wrapping_add(1);
        if self.wit_gen == 0 {
            self.wit_stamp.fill(0);
            self.tgt_stamp.fill(0);
            self.wit_gen = 1;
        }
        let gen = self.wit_gen;
        let mut remaining = 0usize;
        let mut horizon: Cost = 0;
        for (i, &(x, wo, _)) in outs.iter().enumerate() {
            if x as usize == u {
                continue; // not a pair; no shortcut ever needed
            }
            let limit = wi.saturating_add(wo);
            self.tgt_limit[x as usize] = limit;
            self.tgt_idx[x as usize] = i as u32;
            self.tgt_stamp[x as usize] = gen;
            remaining += 1;
            if limit > horizon {
                horizon = limit;
            }
        }
        if remaining == 0 {
            return;
        }
        let budget = base_budget + 2 * outs.len();
        self.wit_heap.clear();
        self.wit_dist[u] = 0;
        self.wit_stamp[u] = gen;
        self.wit_heap.push(Reverse((0, u as u32)));
        let mut settles = 0usize;
        while let Some(Reverse((d, x))) = self.wit_heap.pop() {
            let xi = x as usize;
            if d > self.wit_dist[xi] {
                continue; // stale heap entry
            }
            if d > horizon {
                return; // every live target's limit is behind us
            }
            if self.tgt_stamp[xi] == gen {
                self.tgt_stamp[xi] = 0; // consume: settled distance is final
                if d <= self.tgt_limit[xi] {
                    witnessed[self.tgt_idx[xi] as usize] = true;
                }
                remaining -= 1;
                if remaining == 0 {
                    return;
                }
            }
            settles += 1;
            if settles > budget {
                return;
            }
            for &t in &self.out[xi] {
                let e = &self.temps[t as usize];
                let y = e.to as usize;
                if y == excluded || self.contracted[y] {
                    continue;
                }
                let nd = d.saturating_add(e.w);
                if nd > horizon {
                    continue;
                }
                if self.wit_stamp[y] != gen || nd < self.wit_dist[y] {
                    self.wit_stamp[y] = gen;
                    self.wit_dist[y] = nd;
                    self.wit_heap.push(Reverse((nd, y as u32)));
                }
            }
        }
    }

    /// Edge-difference priority of contracting `v` now: shortcuts the
    /// contraction would add, minus the live edges it removes, plus the
    /// depth term. Lower contracts earlier.
    fn priority(&mut self, v: usize) -> i64 {
        let ins = self.live_in(v);
        let outs = self.live_out(v);
        let removed = ins.len() + outs.len();
        let pairs = ins
            .iter()
            .map(|&(u, _, _)| outs.iter().filter(|&&(x, _, _)| x != u).count())
            .sum::<usize>();
        let added = if pairs > SIM_PAIR_CAP {
            pairs
        } else {
            let mut mark = std::mem::take(&mut self.wit_mark);
            let mut added = 0usize;
            for &(u, wi, _) in &ins {
                mark.clear();
                mark.resize(outs.len(), false);
                self.witness_many(u as usize, wi, &outs, v, SIM_SETTLE_BUDGET, &mut mark);
                for (i, &(x, _, _)) in outs.iter().enumerate() {
                    if x != u && !mark[i] {
                        added += 1;
                    }
                }
            }
            self.wit_mark = mark;
            added
        };
        added as i64 - removed as i64 + i64::from(self.depth[v])
    }

    fn contract(&mut self, v: usize, next_rank: &mut u32) {
        let ins = self.live_in(v);
        let outs = self.live_out(v);
        let mut mark = std::mem::take(&mut self.wit_mark);
        for &(u, wi, ti) in &ins {
            mark.clear();
            mark.resize(outs.len(), false);
            self.witness_many(u as usize, wi, &outs, v, WITNESS_SETTLE_BUDGET, &mut mark);
            for (i, &(x, wo, to)) in outs.iter().enumerate() {
                if x == u || mark[i] {
                    continue;
                }
                let t = self.temps.len() as u32;
                self.temps.push(Temp {
                    from: u,
                    to: x,
                    w: wi.saturating_add(wo),
                    a: ti,
                    b: to,
                });
                self.out[u as usize].push(t);
                self.inn[x as usize].push(t);
            }
        }
        self.wit_mark = mark;
        self.contracted[v] = true;
        self.rank[v] = *next_rank;
        *next_rank += 1;
        let d = self.depth[v] + 1;
        for &(u, _, _) in &ins {
            let dd = &mut self.depth[u as usize];
            if *dd < d {
                *dd = d;
            }
        }
        for &(x, _, _) in &outs {
            let dd = &mut self.depth[x as usize];
            if *dd < d {
                *dd = d;
            }
        }
    }

    /// Contracts every node in priority order with lazy re-evaluation:
    /// a popped node whose recomputed priority no longer beats the heap
    /// top is pushed back instead of contracted.
    fn contract_all(&mut self) {
        let n = self.contracted.len();
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::with_capacity(n);
        for v in 0..n {
            let p = self.priority(v);
            heap.push(Reverse((p, v as u32)));
        }
        let mut next_rank = 0u32;
        while let Some(Reverse((p, v))) = heap.pop() {
            let vi = v as usize;
            if self.contracted[vi] {
                continue;
            }
            let p2 = self.priority(vi);
            if p2 > p {
                if let Some(&Reverse((top, _))) = heap.peek() {
                    if p2 > top {
                        heap.push(Reverse((p2, v)));
                        continue;
                    }
                }
            }
            self.contract(vi, &mut next_rank);
        }
    }

    /// Partitions the temp edges into the two CSR halves (counting sort
    /// in temp-id order, so rows come out deterministic) and remaps
    /// shortcut children from temp ids to final refs.
    fn assemble(self, n: usize) -> ChIndex {
        let Builder { temps, rank, .. } = self;
        let mut up_row = vec![0u32; n + 1];
        let mut down_row = vec![0u32; n + 1];
        for t in &temps {
            if rank[t.from as usize] < rank[t.to as usize] {
                up_row[t.from as usize + 1] += 1;
            } else {
                down_row[t.to as usize + 1] += 1;
            }
        }
        for v in 0..n {
            up_row[v + 1] += up_row[v];
            down_row[v + 1] += down_row[v];
        }
        let up_count = up_row[n] as usize;
        let down_count = down_row[n] as usize;
        let mut up_cur = up_row.clone();
        let mut down_cur = down_row.clone();
        let mut up_to = vec![0u32; up_count];
        let mut up_w = vec![0 as Cost; up_count];
        let mut up_a = vec![0u32; up_count];
        let mut up_b = vec![0u32; up_count];
        let mut down_from = vec![0u32; down_count];
        let mut down_w = vec![0 as Cost; down_count];
        let mut down_a = vec![0u32; down_count];
        let mut down_b = vec![0u32; down_count];
        let mut temp_ref = vec![0u32; temps.len()];
        for (ti, t) in temps.iter().enumerate() {
            if rank[t.from as usize] < rank[t.to as usize] {
                let s = up_cur[t.from as usize] as usize;
                up_cur[t.from as usize] += 1;
                up_to[s] = t.to;
                up_w[s] = t.w;
                temp_ref[ti] = s as u32;
            } else {
                let s = down_cur[t.to as usize] as usize;
                down_cur[t.to as usize] += 1;
                down_from[s] = t.from;
                down_w[s] = t.w;
                temp_ref[ti] = (up_count + s) as u32;
            }
        }
        for (ti, t) in temps.iter().enumerate() {
            let (a, b) = if t.b == CH_ORIGINAL {
                (t.a, CH_ORIGINAL)
            } else {
                (temp_ref[t.a as usize], temp_ref[t.b as usize])
            };
            let r = temp_ref[ti] as usize;
            if r < up_count {
                up_a[r] = a;
                up_b[r] = b;
            } else {
                down_a[r - up_count] = a;
                down_b[r - up_count] = b;
            }
        }
        ChIndex {
            rank,
            up_row,
            up_to,
            up_w,
            up_a,
            up_b,
            down_row,
            down_from,
            down_w,
            down_a,
            down_b,
        }
    }
}

impl FrozenGraph {
    /// Builds a contraction hierarchy over this graph and the given
    /// per-edge weights (see [`ChIndex::build`]).
    pub fn contraction_hierarchy(&self, weights: &[Cost]) -> ChIndex {
        ChIndex::build(self, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::link::RouteOp;

    /// Plain Dijkstra over the weight vector — the oracle the CH
    /// distances must reproduce exactly.
    fn dijkstra(f: &FrozenGraph, weights: &[Cost], src: usize) -> Vec<Option<Cost>> {
        let n = f.node_count();
        let mut dist: Vec<Option<Cost>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = Some(0);
        heap.push(Reverse((0, src as u32)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist[u as usize] != Some(d) {
                continue;
            }
            for e in f.row(u as usize) {
                let v = f.edges[e].to as usize;
                let nd = d.saturating_add(weights[e]);
                if dist[v].map_or(true, |old| nd < old) {
                    dist[v] = Some(nd);
                    heap.push(Reverse((nd, v as u32)));
                }
            }
        }
        dist
    }

    /// Reference CH query: forward over the upward half, backward over
    /// the transposed downward half, best meeting node wins. Returns
    /// the distance and the unpacked edge path.
    fn ch_query(
        _f: &FrozenGraph,
        ch: &ChIndex,
        src: usize,
        dst: usize,
    ) -> Option<(Cost, Vec<EdgeId>)> {
        let n = ch.node_count();
        let mut dist_d: Vec<Option<(Cost, Option<u32>)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist_d[dst] = Some((0, None));
        heap.push(Reverse((0, dst as u32)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if dist_d[v as usize].map(|(c, _)| c) != Some(d) {
                continue;
            }
            for e in ch.down_into(NodeId::from_raw(v)) {
                let u = e.node.index();
                let nd = d.saturating_add(e.weight);
                if dist_d[u].map_or(true, |(c, _)| nd < c) {
                    dist_d[u] = Some((nd, Some(e.edge)));
                    heap.push(Reverse((nd, u as u32)));
                }
            }
        }
        let mut dist_u: Vec<Option<(Cost, Option<u32>)>> = vec![None; n];
        let mut best: Option<(Cost, u32)> = None;
        let mut heap = BinaryHeap::new();
        dist_u[src] = Some((0, None));
        heap.push(Reverse((0, src as u32)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist_u[u as usize].map(|(c, _)| c) != Some(d) {
                continue;
            }
            if let Some((bc, _)) = best {
                if d >= bc {
                    break;
                }
            }
            if let Some((dd, _)) = dist_d[u as usize] {
                let through = d.saturating_add(dd);
                if best.map_or(true, |(bc, _)| through < bc) {
                    best = Some((through, u));
                }
            }
            for e in ch.up_edges(NodeId::from_raw(u)) {
                let v = e.node.index();
                let nd = d.saturating_add(e.weight);
                if dist_u[v].map_or(true, |(c, _)| nd < c) {
                    dist_u[v] = Some((nd, Some(e.edge)));
                    heap.push(Reverse((nd, v as u32)));
                }
            }
        }
        let (cost, meet) = best?;
        let mut refs_up = Vec::new();
        let mut x = meet as usize;
        while let Some((_, Some(r))) = dist_u[x] {
            refs_up.push(r);
            // The up half stores heads; recover the tail by walking the
            // rows (test-only, O(n)).
            let mut tail = None;
            for v in 0..n {
                if (ch.up_row[v]..ch.up_row[v + 1]).contains(&r) {
                    tail = Some(v);
                }
            }
            x = tail.unwrap();
        }
        refs_up.reverse();
        let mut path = Vec::new();
        for r in refs_up {
            assert!(ch.unpack_into(r, &mut path));
        }
        let mut x = meet as usize;
        while let Some((_, Some(r))) = dist_d[x] {
            assert!(ch.unpack_into(r, &mut path));
            let s = r as usize - ch.up_count();
            let mut head = None;
            for v in 0..n {
                if (ch.down_row[v]..ch.down_row[v + 1]).contains(&(s as u32)) {
                    head = Some(v);
                }
            }
            x = head.unwrap();
        }
        Some((cost, path))
    }

    fn world(seed: u64, hosts: usize, extra: usize) -> FrozenGraph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..hosts).map(|i| g.node(&format!("h{i}"))).collect();
        // A connected ring plus pseudo-random chords.
        for i in 0..hosts {
            g.declare_link(
                ids[i],
                ids[(i + 1) % hosts],
                100 + (i as u64 % 7) * 50,
                RouteOp::UUCP,
            );
        }
        let mut s = seed | 1;
        for _ in 0..extra {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (s >> 33) as usize % hosts;
            let b = (s >> 17) as usize % hosts;
            if a != b {
                g.declare_link(ids[a], ids[b], 50 + (s % 900), RouteOp::UUCP);
            }
        }
        g.freeze()
    }

    fn plain_weights(f: &FrozenGraph) -> Vec<Cost> {
        (0..f.edge_count()).map(|e| f.edges[e].cost()).collect()
    }

    #[test]
    fn ch_distances_match_dijkstra_everywhere() {
        for seed in [3, 17, 99] {
            let f = world(seed, 24, 40);
            let w = plain_weights(&f);
            let ch = ChIndex::build(&f, &w);
            assert!(ch.validate_against(&f));
            assert!(ch.weights_consistent(&w));
            let n = f.node_count();
            for src in 0..n {
                let want = dijkstra(&f, &w, src);
                for (dst, &want_dst) in want.iter().enumerate() {
                    let got = ch_query(&f, &ch, src, dst);
                    assert_eq!(
                        got.as_ref().map(|&(c, _)| c),
                        want_dst,
                        "seed {seed} src {src} dst {dst}"
                    );
                    if let Some((cost, path)) = got {
                        // The unpacked path is connected, starts at src,
                        // ends at dst, and its weights sum to the answer.
                        let mut at = src;
                        let mut total: Cost = 0;
                        for &e in &path {
                            assert!(f.row(at).contains(&e.index()), "disconnected unpack");
                            total = total.saturating_add(w[e.index()]);
                            at = f.edges[e.index()].to as usize;
                        }
                        assert_eq!(at, dst);
                        assert_eq!(total, cost);
                    }
                }
            }
        }
    }

    #[test]
    fn validate_rejects_tampering() {
        let f = world(7, 12, 12);
        let w = plain_weights(&f);
        let good = ChIndex::build(&f, &w);
        assert!(good.validate_against(&f));

        let mut bad = good.clone();
        if !bad.rank.is_empty() {
            bad.rank[0] = bad.rank[1 % bad.rank.len()];
            assert!(!bad.validate_against(&f), "duplicate rank accepted");
        }

        let mut bad = good.clone();
        if !bad.up_row.is_empty() {
            let n = bad.up_row.len() - 1;
            bad.up_row[n] += 1;
            assert!(!bad.validate_against(&f), "row overrun accepted");
        }

        let mut bad = good.clone();
        if !bad.up_to.is_empty() {
            bad.up_to[0] = u32::MAX;
            assert!(!bad.validate_against(&f), "out-of-range head accepted");
        }

        let mut bad = good.clone();
        if let Some(w0) = bad.up_w.first_mut() {
            *w0 = w0.wrapping_add(1);
            // Either an original now disagreeing with the frozen edge's
            // weight table, or a shortcut whose sum no longer matches —
            // weights_consistent or validate must notice.
            assert!(
                !bad.validate_against(&f) || !bad.weights_consistent(&w),
                "weight tamper accepted"
            );
        }
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let f = Graph::new().freeze();
        let ch = ChIndex::build(&f, &[]);
        assert!(ch.validate_against(&f));
        assert_eq!(ch.up_count() + ch.down_count(), 0);

        let mut g = Graph::new();
        g.node("solo");
        let f = g.freeze();
        let ch = ChIndex::build(&f, &[]);
        assert!(ch.validate_against(&f));
        assert_eq!(ch.node_count(), 1);
    }

    #[test]
    fn parallel_edges_keep_the_cheapest_and_self_loops_drop() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 500, RouteOp::UUCP);
        g.declare_link(a, b, 100, RouteOp::ARPA);
        g.declare_link(a, a, 1, RouteOp::UUCP);
        let f = g.freeze();
        let w = plain_weights(&f);
        let ch = ChIndex::build(&f, &w);
        assert!(ch.validate_against(&f));
        let (cost, _) = ch_query(&f, &ch, a.index(), b.index()).unwrap();
        assert_eq!(Some(cost), dijkstra(&f, &w, a.index())[b.index()]);
    }
}
