//! The reverse adjacency index: who links *to* a node.
//!
//! A [`FrozenGraph`] is a forward CSR — `row_start` slices the edge
//! array by tail node. Point-to-point search (bidirectional Dijkstra,
//! and later contraction hierarchies) also needs the transpose: for a
//! head node `v`, every `(tail, edge)` pair pointing at it. That is a
//! [`ReverseGraph`]: a second CSR over the *same* edge ids, built once
//! with a counting sort and immutable thereafter.
//!
//! The reverse index is deliberately a separate struct rather than a
//! field of [`FrozenGraph`]: the frozen graph is persisted field-by-
//! field (PAGF1) and compared with `Eq` in round-trip tests, and the
//! transpose is derived data — always reconstructible, optionally
//! stored in a snapshot section (see [`crate::snapshot`]).
//!
//! Within one reverse row the edge ids are ascending (the counting
//! sort scans edges in id order), so iteration order is deterministic
//! and independent of how the reverse index was obtained — built fresh
//! or loaded from a snapshot, the rows are byte-identical.

use crate::frozen::{EdgeId, FrozenGraph};
use crate::graph::NodeId;

/// The transpose of a [`FrozenGraph`]'s edge list: for each node, the
/// `(tail, edge)` pairs of every edge pointing at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseGraph {
    /// CSR row starts by *head* node; `row_start[v]..row_start[v+1]`
    /// indexes `from` / `edge`.
    pub(crate) row_start: Vec<u32>,
    /// The tail node of each in-edge.
    pub(crate) from: Vec<u32>,
    /// The forward [`EdgeId`] of each in-edge (ascending within a row).
    pub(crate) edge: Vec<u32>,
}

impl ReverseGraph {
    /// Builds the transpose of `f` with a counting sort over edge
    /// heads: O(n + m), two passes, no comparison sort.
    pub fn build(f: &FrozenGraph) -> ReverseGraph {
        let n = f.node_count();
        let m = f.edge_count();
        let mut row_start = vec![0u32; n + 1];
        for e in &f.edges {
            row_start[e.to as usize + 1] += 1;
        }
        for v in 0..n {
            row_start[v + 1] += row_start[v];
        }
        let mut cursor = row_start.clone();
        let mut from = vec![0u32; m];
        let mut edge = vec![0u32; m];
        // Edges visited in id order, so each reverse row comes out
        // edge-id-ascending — the determinism guarantee above.
        for u in 0..n {
            for e in f.row(u) {
                let head = f.edges[e].to as usize;
                let slot = cursor[head] as usize;
                from[slot] = u as u32;
                edge[slot] = e as u32;
                cursor[head] += 1;
            }
        }
        ReverseGraph {
            row_start,
            from,
            edge,
        }
    }

    /// Number of nodes the index covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.row_start.len() - 1
    }

    /// Number of edges (same as the forward graph's).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge.len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.row_start[i + 1] - self.row_start[i]) as usize
    }

    /// Iterates the in-edges of `v` as `(tail, edge)` pairs, edge ids
    /// ascending.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let i = v.index();
        let r = self.row_start[i] as usize..self.row_start[i + 1] as usize;
        r.map(move |s| {
            (
                NodeId::from_raw(self.from[s]),
                EdgeId::from_raw(self.edge[s]),
            )
        })
    }

    /// Checks that this index is structurally the transpose of `f`:
    /// matching node/edge counts, monotone rows spanning the edge
    /// array, and every slot's edge actually pointing at the row's
    /// node from the recorded tail. Used when loading a persisted
    /// reverse section — a snapshot that lies fails here rather than
    /// corrupting a search.
    pub fn validate_against(&self, f: &FrozenGraph) -> bool {
        let n = f.node_count();
        let m = f.edge_count();
        if self.row_start.len() != n + 1
            || self.from.len() != m
            || self.edge.len() != m
            || self.row_start[0] != 0
            || self.row_start[n] as usize != m
        {
            return false;
        }
        // Monotonicity first, over the whole table: together with
        // `row_start[n] == m` it bounds every row below `m`, so the
        // indexing in the main loop cannot run past the arrays even
        // on hostile input (this runs on untrusted snapshot bytes).
        for v in 0..n {
            if self.row_start[v] > self.row_start[v + 1] {
                return false;
            }
        }
        for v in 0..n {
            let row = self.row_start[v] as usize..self.row_start[v + 1] as usize;
            let mut prev: Option<u32> = None;
            for s in row {
                let e = self.edge[s];
                // Ascending edge ids also guarantee each id appears at
                // most once; with from/edge lengths == m, exactly once.
                if prev.is_some_and(|p| p >= e) {
                    return false;
                }
                prev = Some(e);
                let Some(fe) = f.edges.get(e as usize) else {
                    return false;
                };
                if fe.to as usize != v {
                    return false;
                }
                // The recorded tail must own edge id `e` in the
                // forward CSR.
                let u = self.from[s] as usize;
                if u >= n || !f.row(u).contains(&(e as usize)) {
                    return false;
                }
            }
        }
        true
    }
}

impl FrozenGraph {
    /// Builds the reverse adjacency index (see [`ReverseGraph`]).
    pub fn reverse(&self) -> ReverseGraph {
        ReverseGraph::build(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crate::link::RouteOp;

    #[test]
    fn transpose_matches_forward_edges() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, c, 20, RouteOp::ARPA);
        g.declare_link(c, b, 5, RouteOp::UUCP);
        let f = g.freeze();
        let r = f.reverse();
        assert_eq!(r.node_count(), f.node_count());
        assert_eq!(r.edge_count(), f.edge_count());
        assert_eq!(r.in_degree(a), 0);
        assert_eq!(r.in_degree(b), 2);
        let ins: Vec<_> = r.in_edges(b).collect();
        // Edge-id order: a->b froze before c->b.
        assert_eq!(ins[0].0, a);
        assert_eq!(ins[1].0, c);
        for (tail, e) in r.in_edges(b) {
            assert_eq!(f.edge_target(e), b);
            assert!(f.out_edges(tail).any(|oe| oe == e));
        }
        assert!(r.validate_against(&f));
    }

    #[test]
    fn every_forward_edge_appears_exactly_once() {
        let mut g = Graph::new();
        let names: Vec<_> = (0..8).map(|i| g.node(&format!("h{i}"))).collect();
        for i in 0..8usize {
            for j in 0..8usize {
                if i != j && (i + j) % 3 == 0 {
                    g.declare_link(names[i], names[j], (i * 10 + j) as u64, RouteOp::UUCP);
                }
            }
        }
        let f = g.freeze();
        let r = f.reverse();
        let mut seen = vec![false; f.edge_count()];
        for v in f.node_ids() {
            for (_, e) in r.in_edges(v) {
                assert!(!seen[e.index()], "edge listed twice");
                seen[e.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every edge listed");
        assert!(r.validate_against(&f));
    }

    #[test]
    fn validate_rejects_mismatches() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        let f = g.freeze();
        let good = f.reverse();
        assert!(good.validate_against(&f));

        let mut wrong_row = good.clone();
        wrong_row.row_start[1] = 9;
        assert!(!wrong_row.validate_against(&f));

        let mut wrong_head = good.clone();
        wrong_head.from[0] = 1; // b does not own edge 0
        assert!(!wrong_head.validate_against(&f));

        // A transpose of a different graph fails too.
        let mut g2 = Graph::new();
        let a2 = g2.node("a");
        let b2 = g2.node("b");
        g2.declare_link(b2, a2, 10, RouteOp::UUCP);
        assert!(!g2.freeze().reverse().validate_against(&f));
    }

    #[test]
    fn empty_graph_reverses() {
        let g = Graph::new();
        let f = g.freeze();
        let r = f.reverse();
        assert_eq!(r.node_count(), 0);
        assert_eq!(r.edge_count(), 0);
        assert!(r.validate_against(&f));
    }
}
