//! Graphviz DOT export for debugging and documentation.
//!
//! Not part of the 1986 tool, but invaluable for inspecting parsed maps
//! and shortest-path trees; the examples use it to visualize the paper's
//! figures.

use crate::flags::{LinkFlags, NodeFlags};
use crate::graph::Graph;
use std::fmt::Write as _;

/// Renders the graph in DOT format.
///
/// Networks are drawn as boxes, domains as octagons, private hosts
/// dashed. Implicit edges (network membership, aliases) are styled
/// distinctly from explicit links.
///
/// # Examples
///
/// ```
/// use pathalias_graph::{Graph, RouteOp};
///
/// let mut g = Graph::new();
/// let a = g.node("a");
/// let b = g.node("b");
/// g.declare_link(a, b, 10, RouteOp::UUCP);
/// let dot = pathalias_graph::dot::to_dot(&g);
/// assert!(dot.starts_with("digraph pathalias {"));
/// assert!(dot.contains("\"a\" -> \"b\""));
/// ```
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::from("digraph pathalias {\n");
    out.push_str("  rankdir=LR;\n");
    for (id, node) in g.iter_nodes() {
        if node.flags.contains(NodeFlags::DELETED) {
            continue;
        }
        let name = g.name(id);
        let mut attrs: Vec<String> = Vec::new();
        if node.is_domain() {
            attrs.push("shape=octagon".to_string());
        } else if node.is_net() {
            attrs.push("shape=box".to_string());
        }
        if node.flags.contains(NodeFlags::PRIVATE) {
            attrs.push("style=dashed".to_string());
        }
        if node.flags.contains(NodeFlags::DEAD) {
            attrs.push("color=red".to_string());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  \"{}\";", escape(name));
        } else {
            let _ = writeln!(out, "  \"{}\" [{}];", escape(name), attrs.join(", "));
        }
    }
    for (id, node) in g.iter_nodes() {
        if node.flags.contains(NodeFlags::DELETED) {
            continue;
        }
        let from = g.name(id);
        for (_, link) in g.links_from(id) {
            if link.flags.contains(LinkFlags::DELETED) {
                continue;
            }
            let to = g.name(link.to);
            let mut attrs = vec![format!("label=\"{}\"", link.cost)];
            if link.flags.contains(LinkFlags::ALIAS) {
                attrs.push("style=dotted".to_string());
                attrs.push("dir=both".to_string());
            } else if link
                .flags
                .intersects(LinkFlags::NET_IN | LinkFlags::NET_OUT)
            {
                attrs.push("style=dashed".to_string());
            }
            if link.flags.contains(LinkFlags::GATEWAY) {
                attrs.push("color=blue".to_string());
            }
            if link.flags.contains(LinkFlags::DEAD) {
                attrs.push("color=red".to_string());
            }
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [{}];",
                escape(from),
                escape(to),
                attrs.join(", ")
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, RouteOp};

    #[test]
    fn styles_by_kind() {
        let mut g = Graph::new();
        let h = g.node("host");
        let net = g.node("NET");
        let dom = g.node(".edu");
        g.declare_network(net, &[(h, 10)], RouteOp::UUCP);
        g.declare_link(h, dom, 20, RouteOp::UUCP);
        let dot = to_dot(&g);
        assert!(dot.contains("\"NET\" [shape=box]"));
        assert!(dot.contains("\".edu\" [shape=octagon]"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn deleted_items_hidden() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 5, RouteOp::UUCP);
        g.delete_link(a, b);
        g.delete_node(b);
        let dot = to_dot(&g);
        assert!(!dot.contains("\"a\" -> \"b\""));
        assert!(!dot.contains("\"b\";"));
    }

    #[test]
    fn escapes_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
