//! A pointer-per-object replica of the 1986 memory layout.
//!
//! The paper's allocator study (experiment E4) contrasts the bump-arena
//! discipline with a general-purpose allocator exercising one allocation
//! per node, per link, and per name — exactly what a straight C
//! translation with `malloc` would do. This module builds that layout
//! (`Box` per link in a singly-linked adjacency list, `Box<str>` per
//! name) so the benchmark can compare both builds under a counting
//! allocator.
//!
//! It is *not* used by the pipeline; [`crate::Graph`]'s pooled layout is
//! the real representation.

use crate::graph::Graph;
use crate::Cost;

/// A link cell in the boxed representation: one heap allocation each,
/// like the original's `link` struct.
#[derive(Debug)]
pub struct BoxedLink {
    /// Index of the destination node in [`BoxedGraph::nodes`].
    pub to: usize,
    /// Link cost.
    pub cost: Cost,
    /// Next cell in the adjacency list.
    pub next: Option<Box<BoxedLink>>,
}

/// A node cell in the boxed representation: owns its name and the head
/// of its adjacency list.
#[derive(Debug)]
pub struct BoxedNode {
    /// Host name (one allocation per name, as with `strcpy` into
    /// `malloc`ed space).
    pub name: Box<str>,
    /// Adjacency list head.
    pub links: Option<Box<BoxedLink>>,
}

/// The whole boxed graph.
#[derive(Debug, Default)]
pub struct BoxedGraph {
    /// All nodes; indices stand in for the original's node pointers.
    pub nodes: Vec<BoxedNode>,
}

impl BoxedGraph {
    /// Builds a boxed replica of `g` (live links only).
    pub fn from_graph(g: &Graph) -> Self {
        let ids: Vec<_> = g.node_ids().collect();
        let mut nodes: Vec<BoxedNode> = ids
            .iter()
            .map(|&id| BoxedNode {
                name: g.name(id).into(),
                links: None,
            })
            .collect();
        for (pos, &id) in ids.iter().enumerate() {
            for (_, l) in g.links_from(id) {
                if l.flags.contains(crate::LinkFlags::DELETED) {
                    continue;
                }
                let cell = Box::new(BoxedLink {
                    to: l.to.index(),
                    cost: l.cost,
                    next: nodes[pos].links.take(),
                });
                nodes[pos].links = Some(cell);
            }
        }
        BoxedGraph { nodes }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of link cells (walks every list).
    pub fn link_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                let mut c = 0;
                let mut cur = n.links.as_deref();
                while let Some(l) = cur {
                    c += 1;
                    cur = l.next.as_deref();
                }
                c
            })
            .sum()
    }

    /// Sums link costs by walking all adjacency lists; used by the
    /// benchmark as a traversal workload over the pointer layout.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for n in &self.nodes {
            let mut cur = n.links.as_deref();
            while let Some(l) = cur {
                acc = acc.wrapping_add(l.cost).wrapping_add(l.to as u64);
                cur = l.next.as_deref();
            }
        }
        acc
    }
}

impl Drop for BoxedGraph {
    fn drop(&mut self) {
        // Unlink each adjacency list iteratively: the default recursive
        // drop would overflow the stack on long lists (a real hazard at
        // USENET scale with thousands of links on hub nodes).
        for node in &mut self.nodes {
            let mut cur = node.links.take();
            while let Some(mut cell) = cur {
                cur = cell.next.take();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, RouteOp};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, c, 20, RouteOp::UUCP);
        g.declare_link(b, c, 30, RouteOp::UUCP);
        g
    }

    #[test]
    fn mirrors_counts() {
        let g = sample();
        let bg = BoxedGraph::from_graph(&g);
        assert_eq!(bg.node_count(), 3);
        assert_eq!(bg.link_count(), 3);
    }

    #[test]
    fn names_copied() {
        let g = sample();
        let bg = BoxedGraph::from_graph(&g);
        let names: Vec<&str> = bg.nodes.iter().map(|n| &*n.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn deleted_links_excluded() {
        let mut g = sample();
        let a = g.try_node("a").unwrap();
        let b = g.try_node("b").unwrap();
        g.delete_link(a, b);
        let bg = BoxedGraph::from_graph(&g);
        assert_eq!(bg.link_count(), 2);
    }

    #[test]
    fn checksum_stable() {
        let g = sample();
        let x = BoxedGraph::from_graph(&g).checksum();
        let y = BoxedGraph::from_graph(&g).checksum();
        assert_eq!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn deep_lists_drop_without_overflow() {
        let mut g = Graph::new();
        let hub = g.node("hub");
        for i in 0..200_000 {
            let to = g.node(&format!("n{i}"));
            g.add_raw_link(hub, to, 1, RouteOp::UUCP, crate::LinkFlags::empty());
        }
        let bg = BoxedGraph::from_graph(&g);
        assert_eq!(bg.link_count(), 200_000);
        drop(bg); // Must not blow the stack.
    }
}
