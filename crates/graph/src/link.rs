//! Links: weighted, labelled directed edges.

use crate::flags::LinkFlags;
use crate::graph::{LinkId, NodeId};
use crate::Cost;
use std::fmt;

/// Which side of the routing operator the host name appears on when an
/// address is built across this link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Host on the left: `host!%s` (UUCP convention).
    Left,
    /// Host on the right: `%s@host` (ARPANET convention).
    Right,
}

/// A routing operator: the character used to splice a host into an
/// address, and which side of it the host name goes.
///
/// In the input language the operator is written adjacent to the
/// destination: a *prefix* operator (`@b`) puts the host on the right of
/// the character (`%s@b`), a *suffix* operator (`b!`) puts it on the
/// left (`b!%s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteOp {
    /// Operator character (one of `! @ : %`).
    pub ch: char,
    /// Side the host name appears on.
    pub dir: Dir,
}

impl RouteOp {
    /// The default UUCP operator: `host!%s`.
    pub const UUCP: RouteOp = RouteOp {
        ch: '!',
        dir: Dir::Left,
    };

    /// The ARPANET operator: `%s@host`.
    pub const ARPA: RouteOp = RouteOp {
        ch: '@',
        dir: Dir::Right,
    };

    /// The set of characters accepted as routing operators.
    pub const OPERATOR_CHARS: &'static [char] = &['!', '@', ':', '%'];

    /// Whether `ch` may serve as a routing operator.
    pub fn is_operator_char(ch: char) -> bool {
        Self::OPERATOR_CHARS.contains(&ch)
    }

    /// Splices `host` into the format-string `route` across this
    /// operator: `duke!%s` + `phs` under `!`/Left gives `duke!phs!%s`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathalias_graph::RouteOp;
    ///
    /// assert_eq!(RouteOp::UUCP.splice("%s", "duke"), "duke!%s");
    /// assert_eq!(RouteOp::ARPA.splice("a!%s", "mit-ai"), "a!%s@mit-ai");
    /// ```
    pub fn splice(&self, route: &str, host: &str) -> String {
        let insert = match self.dir {
            Dir::Left => format!("{host}{}%s", self.ch),
            Dir::Right => format!("%s{}{host}", self.ch),
        };
        route.replacen("%s", &insert, 1)
    }
}

impl Default for RouteOp {
    fn default() -> Self {
        RouteOp::UUCP
    }
}

impl fmt::Display for RouteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            Dir::Left => write!(f, "host{}", self.ch),
            Dir::Right => write!(f, "{}host", self.ch),
        }
    }
}

/// A directed edge in the connectivity graph.
///
/// Mirrors the paper's `link` struct: "a pointer to the next link on the
/// list, a pointer to the destination host on the edge it represents, a
/// non-negative cost, and some flags".
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Destination node.
    pub to: NodeId,
    /// Link weight.
    pub cost: Cost,
    /// Routing operator used to build addresses across this link.
    pub op: RouteOp,
    /// Flags.
    pub flags: LinkFlags,
    /// Next link in the source node's adjacency list (singly linked, as
    /// in the original).
    pub next: Option<LinkId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_left() {
        assert_eq!(RouteOp::UUCP.splice("%s", "duke"), "duke!%s");
        assert_eq!(RouteOp::UUCP.splice("duke!%s", "phs"), "duke!phs!%s");
    }

    #[test]
    fn splice_right() {
        assert_eq!(RouteOp::ARPA.splice("%s", "mit-ai"), "%s@mit-ai");
        assert_eq!(
            RouteOp::ARPA.splice("duke!research!ucbvax!%s", "mit-ai"),
            "duke!research!ucbvax!%s@mit-ai"
        );
    }

    #[test]
    fn splice_replaces_only_first_marker() {
        // Routes contain exactly one %s, but be defensive about it.
        let op = RouteOp::UUCP;
        assert_eq!(op.splice("%s and %s", "x"), "x!%s and %s");
    }

    #[test]
    fn operator_chars() {
        for ch in ['!', '@', ':', '%'] {
            assert!(RouteOp::is_operator_char(ch));
        }
        assert!(!RouteOp::is_operator_char('$'));
        assert!(!RouteOp::is_operator_char('a'));
    }

    #[test]
    fn display_shows_side() {
        assert_eq!(RouteOp::UUCP.to_string(), "host!");
        assert_eq!(RouteOp::ARPA.to_string(), "@host");
    }
}
