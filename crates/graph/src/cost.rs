//! Link costs and the paper's symbolic cost table.
//!
//! Costs are pragmatic, not physical: the paper tuned symbolic values
//! "until, in the estimation of experienced users, the paths produced
//! were reasonable", and deliberately made per-hop overhead dominate
//! (DAILY is 10 × HOURLY instead of 24 ×, "to keep paths short").

/// A link or path cost. Arithmetic on costs saturates, so heuristic
/// penalties can be stacked without overflow.
pub type Cost = u64;

/// "Essentially infinite": the penalty attached to routes pathalias must
/// avoid whenever any alternative exists (entering a gatewayed network
/// without a gateway, relaying out of a domain, traversing an invented
/// back link).
pub const INF: Cost = 30_000_000;

/// Cost of a link declared without an explicit cost.
pub const DEFAULT_COST: Cost = 4_000;

/// The paper's symbolic cost table (OUTPUT section).
///
/// `DEAD` is our one documented extension: input data uses it to mark a
/// last-resort link, exactly as later pathalias releases did.
pub const SYMBOLS: &[(&str, Cost)] = &[
    ("LOCAL", 25),
    ("DEDICATED", 95),
    ("DIRECT", 200),
    ("DEMAND", 300),
    ("HOURLY", 500),
    ("EVENING", 1_800),
    ("POLLED", 5_000),
    ("DAILY", 5_000),
    ("WEEKLY", 30_000),
    ("DEAD", INF),
];

/// Looks up a symbolic cost name (case-sensitive, as in the original).
///
/// # Examples
///
/// ```
/// use pathalias_graph::symbol_cost;
///
/// assert_eq!(symbol_cost("HOURLY"), Some(500));
/// assert_eq!(symbol_cost("hourly"), None);
/// ```
pub fn symbol_cost(name: &str) -> Option<Cost> {
    SYMBOLS
        .iter()
        .find(|(sym, _)| *sym == name)
        .map(|&(_, v)| v)
}

/// The full symbol table, for diagnostics and the experiments harness.
pub fn symbol_table() -> &'static [(&'static str, Cost)] {
    SYMBOLS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        // The exact table from the paper.
        assert_eq!(symbol_cost("LOCAL"), Some(25));
        assert_eq!(symbol_cost("DEDICATED"), Some(95));
        assert_eq!(symbol_cost("DIRECT"), Some(200));
        assert_eq!(symbol_cost("DEMAND"), Some(300));
        assert_eq!(symbol_cost("HOURLY"), Some(500));
        assert_eq!(symbol_cost("EVENING"), Some(1800));
        assert_eq!(symbol_cost("POLLED"), Some(5000));
        assert_eq!(symbol_cost("DAILY"), Some(5000));
        assert_eq!(symbol_cost("WEEKLY"), Some(30000));
    }

    #[test]
    fn daily_is_ten_hourlies() {
        // The paper's point about per-hop overhead: DAILY is 10 ×
        // HOURLY, not 24 ×.
        assert_eq!(
            symbol_cost("DAILY").unwrap(),
            10 * symbol_cost("HOURLY").unwrap()
        );
    }

    #[test]
    fn unknown_symbol() {
        assert_eq!(symbol_cost("FORTNIGHTLY"), None);
        assert_eq!(symbol_cost(""), None);
    }

    #[test]
    fn dead_is_infinite() {
        assert_eq!(symbol_cost("DEAD"), Some(INF));
    }
}
