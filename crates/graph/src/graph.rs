//! The connectivity graph: pools, name resolution, and declaration
//! semantics (duplicate links, networks, aliases, private scoping).

use crate::cost::Cost;
use crate::diag::Warning;
use crate::flags::{LinkFlags, NodeFlags};
use crate::link::{Link, RouteOp};
use crate::node::Node;
use pathalias_arena::{Bump, Handle, Pool};
use pathalias_hash::HostTable;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

/// Identifies a node in the graph.
pub type NodeId = Handle<Node>;

/// Identifies a link in the graph.
pub type LinkId = Handle<Link>;

/// Identifies an input file (for private scoping and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FileId(u32);

impl FileId {
    /// Raw index of the file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The in-memory connectivity graph built by the parsing phase and
/// consumed by the mapping and printing phases.
///
/// # Name resolution
///
/// Host names normally have global scope across all input files. A
/// `private` declaration narrows the scope of a name "to the end of the
/// file in which it is declared": between the declaration and end of
/// file, the name resolves to a fresh, file-local node.
///
/// # Examples
///
/// ```
/// use pathalias_graph::{Graph, RouteOp};
///
/// let mut g = Graph::new();
/// g.begin_file("site-a");
/// let a = g.node("bilbo");
/// g.begin_file("site-b");
/// let b = g.declare_private("bilbo");
/// assert_ne!(a, b);
/// assert_eq!(g.node("bilbo"), b); // Still inside site-b.
/// g.begin_file("site-c");
/// assert_eq!(g.node("bilbo"), a); // Scope ended with the file.
/// ```
#[derive(Debug)]
pub struct Graph {
    names: Bump,
    nodes: Pool<Node>,
    links: Pool<Link>,
    table: HostTable<NodeId>,
    /// `private` bindings for the current file only.
    private_scope: HashMap<Box<str>, NodeId>,
    /// Names mentioned so far in the current file (private-after-use
    /// diagnostics).
    file_mentions: HashSet<Box<str>>,
    files: Vec<String>,
    ignore_case: bool,
    warnings: Vec<Warning>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty, case-sensitive graph.
    pub fn new() -> Self {
        Self::with_ignore_case(false)
    }

    /// Creates an empty graph; with `ignore_case` set, host names fold
    /// to lower case on every lookup (pathalias `-i`).
    pub fn with_ignore_case(ignore_case: bool) -> Self {
        Graph {
            names: Bump::new(),
            nodes: Pool::new(),
            links: Pool::new(),
            table: HostTable::new(),
            private_scope: HashMap::new(),
            file_mentions: HashSet::new(),
            files: vec!["<input>".to_string()],
            ignore_case,
            warnings: Vec::new(),
        }
    }

    /// Whether lookups fold case.
    pub fn ignore_case(&self) -> bool {
        self.ignore_case
    }

    /// Starts a new input file: private scope and mention tracking from
    /// the previous file end here.
    pub fn begin_file(&mut self, name: &str) -> FileId {
        self.private_scope.clear();
        self.file_mentions.clear();
        self.files.push(name.to_string());
        FileId((self.files.len() - 1) as u32)
    }

    /// The current file id.
    pub fn current_file(&self) -> FileId {
        FileId((self.files.len() - 1) as u32)
    }

    /// The name of an input file.
    pub fn file_name(&self, f: FileId) -> &str {
        &self.files[f.index()]
    }

    /// The lookup key for `name`: borrowed unless case folding has to
    /// rewrite it, so the hot path (case-sensitive maps, and lowercase
    /// names under `-i`) never allocates.
    fn key_of<'a>(&self, name: &'a str) -> Cow<'a, str> {
        if self.ignore_case && name.bytes().any(|b| b.is_ascii_uppercase()) {
            Cow::Owned(name.to_ascii_lowercase())
        } else {
            Cow::Borrowed(name)
        }
    }

    fn new_node(&mut self, name: &str, extra: NodeFlags) -> NodeId {
        let span = self.names.push_str(name);
        let mut flags = extra;
        if name.starts_with('.') {
            flags.insert(NodeFlags::DOMAIN);
        }
        let file = self.current_file();
        self.nodes.alloc(Node {
            name: span,
            flags,
            first_link: None,
            file,
            adjust: 0,
        })
    }

    /// Resolves `name` to a node, creating it if unknown. Private
    /// bindings in the current file take precedence over the global
    /// name space.
    pub fn node(&mut self, name: &str) -> NodeId {
        assert!(!name.is_empty(), "host names cannot be empty");
        let key = self.key_of(name);
        self.file_mentions.insert(key.as_ref().into());
        if let Some(&id) = self.private_scope.get(key.as_ref()) {
            return id;
        }
        if let Some(&id) = self.table.peek(&key) {
            return id;
        }
        let id = self.new_node(name, NodeFlags::empty());
        self.table.insert(&key, id);
        id
    }

    /// Looks `name` up without creating it.
    pub fn try_node(&self, name: &str) -> Option<NodeId> {
        let key = self.key_of(name);
        if let Some(&id) = self.private_scope.get(key.as_ref()) {
            return Some(id);
        }
        self.table.peek(&key).copied()
    }

    /// Declares `name` private: a fresh node scoped from here to the end
    /// of the current file. Repeating the declaration in the same file
    /// returns the same node.
    pub fn declare_private(&mut self, name: &str) -> NodeId {
        let key = self.key_of(name);
        if let Some(&id) = self.private_scope.get(key.as_ref()) {
            return id;
        }
        if self.file_mentions.contains(key.as_ref()) {
            self.warnings.push(Warning::PrivateAfterUse {
                host: name.to_string(),
            });
        }
        let id = self.new_node(name, NodeFlags::PRIVATE);
        self.private_scope.insert(key.into_owned().into(), id);
        id
    }

    /// The node's display name.
    pub fn name(&self, id: NodeId) -> &str {
        self.names.str(self.nodes[id].name)
    }

    /// Shared node access.
    pub fn node_ref(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Shared link access.
    pub fn link_ref(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Mutable link access.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id]
    }

    /// Number of nodes (including private, deleted and network nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (including implicit and deleted ones).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all nodes in creation order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter()
    }

    /// Iterates over all node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        self.nodes.handles()
    }

    /// Iterates over the adjacency list of `from` in list order.
    pub fn links_from(&self, from: NodeId) -> LinkIter<'_> {
        LinkIter {
            links: &self.links,
            cur: self.nodes[from].first_link,
        }
    }

    /// Adds a link unconditionally (no duplicate handling), prepending
    /// it to the adjacency list exactly as the original did.
    pub fn add_raw_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        cost: Cost,
        op: RouteOp,
        flags: LinkFlags,
    ) -> LinkId {
        let head = self.nodes[from].first_link;
        let id = self.links.alloc(Link {
            to,
            cost,
            op,
            flags,
            next: head,
        });
        self.nodes[from].first_link = Some(id);
        id
    }

    /// Finds the first explicit (hand-written) link `from -> to`.
    pub fn find_explicit_link(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.links_from(from)
            .find(|(_, l)| l.to == to && l.flags.is_explicit())
            .map(|(id, _)| id)
    }

    /// Finds any live (non-deleted) link `from -> to`.
    pub fn find_link(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.links_from(from)
            .find(|(_, l)| l.to == to && !l.flags.contains(LinkFlags::DELETED))
            .map(|(id, _)| id)
    }

    /// Declares an explicit link, applying the duplicate rule: if the
    /// link already exists, the cheapest declaration wins (a warning is
    /// recorded). Self links are ignored with a warning.
    pub fn declare_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        cost: Cost,
        op: RouteOp,
    ) -> Option<LinkId> {
        if from == to {
            let host = self.name(from).to_string();
            self.warnings.push(Warning::SelfLink { host });
            return None;
        }
        if let Some(existing) = self.find_explicit_link(from, to) {
            let old = self.links[existing].cost;
            let (kept, dropped) = if cost < old {
                let l = &mut self.links[existing];
                l.cost = cost;
                l.op = op;
                (cost, old)
            } else {
                (old, cost)
            };
            self.warnings.push(Warning::DuplicateLink {
                from: self.name(from).to_string(),
                to: self.name(to).to_string(),
                kept,
                dropped,
            });
            return Some(existing);
        }
        Some(self.add_raw_link(from, to, cost, op, LinkFlags::empty()))
    }

    /// Declares `net` as a network with the given members and per-member
    /// entry costs: each member gets an entry edge member→net at its
    /// cost and a free exit edge net→member ("you pay to get onto a
    /// network, but you get off for free").
    pub fn declare_network(&mut self, net: NodeId, members: &[(NodeId, Cost)], op: RouteOp) {
        if self.nodes[net].is_net() && self.has_members(net) {
            self.warnings.push(Warning::RedeclaredNet {
                net: self.name(net).to_string(),
            });
        }
        self.nodes[net].flags.insert(NodeFlags::NET);
        for &(m, cost) in members {
            if m == net {
                let host = self.name(net).to_string();
                self.warnings.push(Warning::SelfLink { host });
                continue;
            }
            // Merge duplicate membership, keeping the cheaper entry.
            let dup_in = self
                .links_from(m)
                .find(|(_, l)| l.to == net && l.flags.contains(LinkFlags::NET_IN))
                .map(|(id, _)| id);
            match dup_in {
                Some(id) => {
                    if cost < self.links[id].cost {
                        self.links[id].cost = cost;
                        self.links[id].op = op;
                    }
                }
                None => {
                    self.add_raw_link(m, net, cost, op, LinkFlags::NET_IN);
                }
            }
            let has_out = self
                .links_from(net)
                .any(|(_, l)| l.to == m && l.flags.contains(LinkFlags::NET_OUT));
            if !has_out {
                self.add_raw_link(net, m, 0, op, LinkFlags::NET_OUT);
            }
        }
    }

    fn has_members(&self, net: NodeId) -> bool {
        self.links_from(net)
            .any(|(_, l)| l.flags.contains(LinkFlags::NET_OUT))
    }

    /// Declares `a` and `b` aliases of one another: a pair of zero-cost
    /// alias edges. Idempotent; self-aliases are ignored with a warning.
    pub fn declare_alias(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            let host = self.name(a).to_string();
            self.warnings.push(Warning::SelfAlias { host });
            return;
        }
        let have_ab = self
            .links_from(a)
            .any(|(_, l)| l.to == b && l.flags.contains(LinkFlags::ALIAS));
        if !have_ab {
            self.add_raw_link(a, b, 0, RouteOp::UUCP, LinkFlags::ALIAS);
        }
        let have_ba = self
            .links_from(b)
            .any(|(_, l)| l.to == a && l.flags.contains(LinkFlags::ALIAS));
        if !have_ba {
            self.add_raw_link(b, a, 0, RouteOp::UUCP, LinkFlags::ALIAS);
        }
    }

    /// Marks a host dead: a legal destination that must never relay.
    pub fn mark_dead(&mut self, id: NodeId) {
        self.nodes[id].flags.insert(NodeFlags::DEAD);
    }

    /// Marks the link `from -> to` dead (last resort). Returns false,
    /// with a warning, if no such link exists.
    pub fn mark_dead_link(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.find_link(from, to) {
            Some(l) => {
                self.links[l].flags.insert(LinkFlags::DEAD);
                true
            }
            None => {
                self.warnings.push(Warning::NoSuchLink {
                    from: self.name(from).to_string(),
                    to: self.name(to).to_string(),
                });
                false
            }
        }
    }

    /// Deletes a host outright: it disappears from mapping and output.
    pub fn delete_node(&mut self, id: NodeId) {
        self.nodes[id].flags.insert(NodeFlags::DELETED);
    }

    /// Deletes the link `from -> to`. Returns false, with a warning, if
    /// no such link exists.
    pub fn delete_link(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.find_link(from, to) {
            Some(l) => {
                self.links[l].flags.insert(LinkFlags::DELETED);
                true
            }
            None => {
                self.warnings.push(Warning::NoSuchLink {
                    from: self.name(from).to_string(),
                    to: self.name(to).to_string(),
                });
                false
            }
        }
    }

    /// Applies an `adjust` bias to a node (added to every path that
    /// transits it).
    pub fn adjust_node(&mut self, id: NodeId, bias: i64) {
        let n = &mut self.nodes[id];
        n.adjust = n.adjust.saturating_add(bias);
        n.flags.insert(NodeFlags::ADJUSTED);
    }

    /// Marks a network as requiring explicit gateways.
    pub fn mark_gated(&mut self, id: NodeId) {
        self.nodes[id]
            .flags
            .insert(NodeFlags::GATED | NodeFlags::NET);
    }

    /// Declares `host` a gateway into `net`: every live link host→net
    /// becomes a gateway link. Returns false, with a warning, if no such
    /// link exists.
    pub fn declare_gateway(&mut self, net: NodeId, host: NodeId) -> bool {
        let ids: Vec<LinkId> = self
            .links_from(host)
            .filter(|(_, l)| l.to == net && !l.flags.contains(LinkFlags::DELETED))
            .map(|(id, _)| id)
            .collect();
        if ids.is_empty() {
            self.warnings.push(Warning::NoSuchLink {
                from: self.name(host).to_string(),
                to: self.name(net).to_string(),
            });
            return false;
        }
        for id in ids {
            self.links[id].flags.insert(LinkFlags::GATEWAY);
        }
        true
    }

    /// Post-parse validation: records warnings for suspicious but legal
    /// constructs (currently: `gateway` links into ungated networks).
    pub fn validate(&mut self) {
        let mut found = Vec::new();
        for (from, node) in self.nodes.iter() {
            let mut cur = node.first_link;
            while let Some(lid) = cur {
                let link = &self.links[lid];
                if link.flags.contains(LinkFlags::GATEWAY) && !self.nodes[link.to].is_gated() {
                    found.push(Warning::GatewayIntoUngated {
                        net: self.names.str(self.nodes[link.to].name).to_string(),
                        host: self.names.str(self.nodes[from].name).to_string(),
                    });
                }
                cur = link.next;
            }
        }
        self.warnings.extend(found);
    }

    /// Warnings recorded so far.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Takes ownership of the recorded warnings, clearing the list.
    pub fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }

    /// Records an externally generated warning (used by the parser).
    pub fn push_warning(&mut self, w: Warning) {
        self.warnings.push(w);
    }
}

/// Iterator over a node's adjacency list.
pub struct LinkIter<'a> {
    links: &'a Pool<Link>,
    cur: Option<LinkId>,
}

impl<'a> Iterator for LinkIter<'a> {
    type Item = (LinkId, &'a Link);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.cur?;
        let link = &self.links[id];
        self.cur = link.next;
        Some((id, link))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DEFAULT_COST;

    #[test]
    fn node_interning() {
        let mut g = Graph::new();
        let a = g.node("seismo");
        let b = g.node("seismo");
        assert_eq!(a, b);
        assert_eq!(g.name(a), "seismo");
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn case_folding_optional() {
        let mut g = Graph::new();
        assert_ne!(g.node("UNC"), g.node("unc"));

        let mut g = Graph::with_ignore_case(true);
        assert_eq!(g.node("UNC"), g.node("unc"));
        // The first-seen spelling is kept for display.
        let id = g.node("unc");
        assert_eq!(g.name(id), "UNC");
    }

    #[test]
    fn domain_flag_automatic() {
        let mut g = Graph::new();
        let d = g.node(".edu");
        assert!(g.node_ref(d).is_domain());
        assert!(g.node_ref(d).is_gated());
        let h = g.node("edu");
        assert!(!g.node_ref(h).is_domain());
    }

    #[test]
    fn links_prepend_like_the_original() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, c, 20, RouteOp::UUCP);
        let tos: Vec<NodeId> = g.links_from(a).map(|(_, l)| l.to).collect();
        assert_eq!(tos, vec![c, b], "newest link first");
    }

    #[test]
    fn duplicate_link_keeps_cheapest() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 300, RouteOp::UUCP);
        g.declare_link(a, b, 100, RouteOp::ARPA);
        g.declare_link(a, b, 200, RouteOp::UUCP);
        assert_eq!(g.links_from(a).count(), 1);
        let (_, l) = g.links_from(a).next().unwrap();
        assert_eq!(l.cost, 100);
        assert_eq!(l.op, RouteOp::ARPA);
        assert_eq!(g.warnings().len(), 2);
    }

    #[test]
    fn self_link_ignored() {
        let mut g = Graph::new();
        let a = g.node("a");
        assert!(g.declare_link(a, a, 10, RouteOp::UUCP).is_none());
        assert_eq!(g.links_from(a).count(), 0);
        assert!(matches!(g.warnings()[0], Warning::SelfLink { .. }));
    }

    #[test]
    fn network_creates_paired_edges() {
        let mut g = Graph::new();
        let net = g.node("ARPA");
        let m1 = g.node("mit-ai");
        let m2 = g.node("ucbvax");
        g.declare_network(net, &[(m1, 95), (m2, 95)], RouteOp::ARPA);

        assert!(g.node_ref(net).is_net());
        // Entry edges carry the cost.
        let (_, l) = g
            .links_from(m1)
            .find(|(_, l)| l.to == net)
            .expect("entry edge");
        assert_eq!(l.cost, 95);
        assert!(l.flags.contains(LinkFlags::NET_IN));
        // Exit edges are free.
        let outs: Vec<&Link> = g.links_from(net).map(|(_, l)| l).collect();
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().all(|l| l.cost == 0));
        assert!(outs.iter().all(|l| l.flags.contains(LinkFlags::NET_OUT)));
    }

    #[test]
    fn network_membership_merges_on_redeclaration() {
        let mut g = Graph::new();
        let net = g.node("N");
        let m = g.node("m");
        g.declare_network(net, &[(m, 100)], RouteOp::UUCP);
        g.declare_network(net, &[(m, 50)], RouteOp::UUCP);
        // Cheaper entry wins; no duplicate edges.
        let entries: Vec<&Link> = g
            .links_from(m)
            .filter(|(_, l)| l.to == net)
            .map(|(_, l)| l)
            .collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cost, 50);
        assert_eq!(g.links_from(net).count(), 1);
        assert!(g
            .warnings()
            .iter()
            .any(|w| matches!(w, Warning::RedeclaredNet { .. })));
    }

    #[test]
    fn alias_edges_are_paired_zero_cost() {
        let mut g = Graph::new();
        let p = g.node("princeton");
        let f = g.node("fun");
        g.declare_alias(p, f);
        g.declare_alias(p, f); // Idempotent.
        let (_, ab) = g.links_from(p).next().unwrap();
        let (_, ba) = g.links_from(f).next().unwrap();
        assert_eq!(ab.to, f);
        assert_eq!(ba.to, p);
        assert_eq!(ab.cost, 0);
        assert!(ab.flags.contains(LinkFlags::ALIAS));
        assert_eq!(g.links_from(p).count(), 1);
        assert_eq!(g.links_from(f).count(), 1);
    }

    #[test]
    fn private_scoping_follows_files() {
        let mut g = Graph::new();
        g.begin_file("one");
        let global = g.node("bilbo");
        let princeton = g.node("princeton");
        g.declare_link(global, princeton, DEFAULT_COST, RouteOp::UUCP);

        g.begin_file("two");
        let private = g.declare_private("bilbo");
        assert_ne!(global, private);
        assert!(g.node_ref(private).flags.contains(NodeFlags::PRIVATE));
        // Inside file two, "bilbo" means the private node.
        assert_eq!(g.node("bilbo"), private);
        // Repeated declaration: same node.
        assert_eq!(g.declare_private("bilbo"), private);

        g.begin_file("three");
        assert_eq!(g.node("bilbo"), global);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn private_after_use_warns() {
        let mut g = Graph::new();
        g.begin_file("f");
        let _ = g.node("bilbo");
        let _ = g.declare_private("bilbo");
        assert!(g
            .warnings()
            .iter()
            .any(|w| matches!(w, Warning::PrivateAfterUse { .. })));
    }

    #[test]
    fn dead_and_delete() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        assert!(g.mark_dead_link(a, b));
        assert!(!g.mark_dead_link(b, a));
        g.mark_dead(a);
        assert!(g.node_ref(a).flags.contains(NodeFlags::DEAD));
        assert!(g.delete_link(a, b));
        assert!(g.find_link(a, b).is_none());
        g.delete_node(b);
        assert!(!g.node_ref(b).is_mappable());
    }

    #[test]
    fn gateway_declaration() {
        let mut g = Graph::new();
        let net = g.node("CSNET");
        let host = g.node("relay");
        g.mark_gated(net);
        // Before any link exists the declaration fails.
        assert!(!g.declare_gateway(net, host));
        g.declare_link(host, net, 10, RouteOp::UUCP);
        assert!(g.declare_gateway(net, host));
        let (_, l) = g.links_from(host).next().unwrap();
        assert!(l.flags.contains(LinkFlags::GATEWAY));
    }

    #[test]
    fn validate_flags_gateway_into_ungated() {
        let mut g = Graph::new();
        let net = g.node("OPEN");
        let host = g.node("h");
        g.node_mut(net).flags.insert(NodeFlags::NET);
        g.declare_link(host, net, 10, RouteOp::UUCP);
        g.declare_gateway(net, host);
        g.validate();
        assert!(g
            .warnings()
            .iter()
            .any(|w| matches!(w, Warning::GatewayIntoUngated { .. })));
    }

    #[test]
    fn adjust_accumulates() {
        let mut g = Graph::new();
        let a = g.node("a");
        g.adjust_node(a, 100);
        g.adjust_node(a, -30);
        assert_eq!(g.node_ref(a).adjust, 70);
        assert!(g.node_ref(a).flags.contains(NodeFlags::ADJUSTED));
    }

    #[test]
    fn take_warnings_clears() {
        let mut g = Graph::new();
        let a = g.node("a");
        g.declare_link(a, a, 1, RouteOp::UUCP);
        assert_eq!(g.take_warnings().len(), 1);
        assert!(g.warnings().is_empty());
    }
}
