//! Diagnostics produced while building the graph.
//!
//! The paper stresses that map data "were often contradictory and
//! error-filled", so the builder records everything questionable it
//! tolerates rather than failing.

use std::fmt;

/// A non-fatal condition noticed while building the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// The same link was declared more than once; the cheapest
    /// declaration wins.
    DuplicateLink {
        /// Source host name.
        from: String,
        /// Destination host name.
        to: String,
        /// Cost kept (the minimum).
        kept: u64,
        /// Cost discarded.
        dropped: u64,
    },
    /// A host declared a link to itself; ignored.
    SelfLink {
        /// The host in question.
        host: String,
    },
    /// A network was declared twice; memberships merge.
    RedeclaredNet {
        /// The network name.
        net: String,
    },
    /// `gateway` named a network that is not gatewayed; the declaration
    /// is honoured but probably a mistake.
    GatewayIntoUngated {
        /// The network name.
        net: String,
        /// The would-be gateway host.
        host: String,
    },
    /// An alias declaration paired a name with itself; ignored.
    SelfAlias {
        /// The host in question.
        host: String,
    },
    /// `delete` or `dead` named a link that does not exist.
    NoSuchLink {
        /// Source host name.
        from: String,
        /// Destination host name.
        to: String,
    },
    /// A `private` declaration shadows a host already linked in this
    /// file; earlier references keep their global meaning.
    PrivateAfterUse {
        /// The host in question.
        host: String,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DuplicateLink {
                from,
                to,
                kept,
                dropped,
            } => write!(
                f,
                "duplicate link {from} -> {to}: keeping cost {kept}, dropping {dropped}"
            ),
            Warning::SelfLink { host } => write!(f, "ignoring link from {host} to itself"),
            Warning::RedeclaredNet { net } => {
                write!(f, "network {net} redeclared; merging members")
            }
            Warning::GatewayIntoUngated { net, host } => {
                write!(f, "gateway {host} declared for ungated network {net}")
            }
            Warning::SelfAlias { host } => write!(f, "ignoring alias of {host} to itself"),
            Warning::NoSuchLink { from, to } => {
                write!(f, "no such link {from} -> {to}")
            }
            Warning::PrivateAfterUse { host } => write!(
                f,
                "{host} declared private after use in the same file; earlier references stay global"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let w = Warning::DuplicateLink {
            from: "a".into(),
            to: "b".into(),
            kept: 10,
            dropped: 20,
        };
        let s = w.to_string();
        assert!(s.contains("a -> b") && s.contains("10") && s.contains("20"));

        let w = Warning::SelfLink { host: "x".into() };
        assert!(w.to_string().contains('x'));

        let w = Warning::GatewayIntoUngated {
            net: "ARPA".into(),
            host: "seismo".into(),
        };
        assert!(w.to_string().contains("ARPA") && w.to_string().contains("seismo"));
    }
}
