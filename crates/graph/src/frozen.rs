//! The frozen graph: an immutable compressed-sparse-row snapshot.
//!
//! The paper's mapping phase is "mostly pointers and flags": the
//! mutable [`Graph`] keeps singly-linked adjacency lists, so every
//! traversal chases pointers across the heap. Freezing rebuilds the
//! graph into contiguous arrays — per-node `[start, end)` ranges into
//! parallel `edge_*` slices — which is what Dijkstra actually wants to
//! iterate: one cache line holds many edges, and the visit state is a
//! dense array indexed by node id instead of a hash lookup.
//!
//! Freezing is also where declaration-time bookkeeping is settled once
//! instead of per relaxation:
//!
//! * `delete`d nodes lose their edges (in both directions) — the mapper
//!   never has to test for them again;
//! * `delete`d links are dropped outright;
//! * exact-duplicate parallel links (same target, operator and flags)
//!   collapse to the cheapest declaration;
//! * `adjust` biases are folded into the stored edge costs (the raw
//!   cost is kept on the side for the one case that must not be biased:
//!   edges leaving the mapping *source*).
//!
//! A [`FrozenGraph`] is cheap to share (`Arc`) and never changes; the
//! back-link pass builds an *augmented* copy with
//! [`FrozenGraph::with_edges_appended`] rather than mutating anything.
//!
//! # Examples
//!
//! ```
//! use pathalias_graph::{Graph, RouteOp};
//!
//! let mut g = Graph::new();
//! let a = g.node("unc");
//! let b = g.node("duke");
//! g.declare_link(a, b, 500, RouteOp::UUCP);
//! let f = g.freeze();
//! let out: Vec<_> = f.out_edges(a).collect();
//! assert_eq!(out.len(), 1);
//! assert_eq!(f.edge_target(out[0]), b);
//! assert_eq!(f.edge_cost(out[0]), 500);
//! assert_eq!(f.name(b), "duke");
//! ```

use crate::cost::Cost;
use crate::flags::{LinkFlags, NodeFlags};
use crate::graph::{Graph, NodeId};
use crate::link::{Dir, RouteOp};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Identifies an edge in a [`FrozenGraph`]: an index into the CSR edge
/// arrays. Edge ids are only meaningful for the frozen graph that
/// produced them (an augmented copy renumbers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Builds an edge id from a raw index.
    #[inline]
    pub fn from_raw(idx: u32) -> Self {
        EdgeId(idx)
    }

    /// The raw index value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One frozen edge, packed into 16 bytes so a cache line holds four:
/// target, cost, routing operator (char + side as bytes) and flags.
/// Field order mirrors the [`snapshot`](crate::snapshot) record layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenEdge {
    pub(crate) to: u32,
    pub(crate) op_ch: u8,
    /// 0 = host-on-left (`!`), 1 = host-on-right (`@`).
    pub(crate) op_dir: u8,
    pub(crate) flags: LinkFlags,
    pub(crate) cost: Cost,
}

impl FrozenEdge {
    pub(crate) fn new(to: NodeId, cost: Cost, op: RouteOp, flags: LinkFlags) -> FrozenEdge {
        debug_assert!(op.ch.is_ascii(), "routing operators are ASCII");
        FrozenEdge {
            to: to.raw(),
            op_ch: op.ch as u8,
            op_dir: match op.dir {
                Dir::Left => 0,
                Dir::Right => 1,
            },
            flags,
            cost,
        }
    }

    /// The edge's head (target) node.
    #[inline]
    pub fn to(self) -> NodeId {
        NodeId::from_raw(self.to)
    }

    /// The edge's cost (with the tail's `adjust` bias applied).
    #[inline]
    pub fn cost(self) -> Cost {
        self.cost
    }

    /// The edge's routing operator.
    #[inline]
    pub fn op(self) -> RouteOp {
        RouteOp {
            ch: self.op_ch as char,
            dir: if self.op_dir == 0 {
                Dir::Left
            } else {
                Dir::Right
            },
        }
    }

    /// The edge's flags.
    #[inline]
    pub fn flags(self) -> LinkFlags {
        self.flags
    }

    /// Which side of the operator the host lands on — all the
    /// relaxation needs from the operator, without rebuilding a
    /// [`RouteOp`].
    #[inline]
    pub fn dir(self) -> Dir {
        if self.op_dir == 0 {
            Dir::Left
        } else {
            Dir::Right
        }
    }
}

/// A replacement adjacency row for one node, consumed by
/// [`FrozenGraph::with_rows_replaced`]: the node's complete new
/// out-link list in declaration order, with raw (pre-`adjust`) costs —
/// the same shape the freezer reads out of a built [`Graph`].
#[derive(Debug, Clone)]
pub struct RowPatch {
    /// The node whose row is replaced.
    pub node: NodeId,
    /// The full new row: `(target, raw cost, operator, flags)`.
    pub edges: Vec<(NodeId, Cost, RouteOp, LinkFlags)>,
}

/// Maps edge ids of a snapshot onto the delta-applied snapshot
/// returned by [`FrozenGraph::with_rows_replaced`]. Edges before the
/// first replaced row keep their ids; later edges shift by the
/// cumulative row-size delta; edges *inside* a replaced row have no
/// counterpart and map to `None`.
#[derive(Debug, Clone)]
pub struct EdgeShift {
    /// Per replaced row, ascending: `(old_start, old_end, delta)`
    /// where `delta` applies to every old edge id at or past
    /// `old_end` (until the next span).
    spans: Vec<(u32, u32, i64)>,
}

impl EdgeShift {
    /// The new id of old edge `e`, or `None` when `e` sat inside a
    /// replaced row.
    pub fn map(&self, e: EdgeId) -> Option<EdgeId> {
        let raw = e.raw();
        // Rightmost span starting at or before `raw`.
        let i = self.spans.partition_point(|&(start, _, _)| start <= raw);
        if i == 0 {
            return Some(e); // Before the first dirty row: identity.
        }
        let (_, end, delta) = self.spans[i - 1];
        if raw < end {
            return None; // Inside a replaced row.
        }
        Some(EdgeId::from_raw((raw as i64 + delta) as u32))
    }

    /// Whether the delta moved no surviving edge (every replaced row
    /// kept its length), so old and new ids coincide outside the
    /// replaced rows.
    pub fn is_identity_outside_rows(&self) -> bool {
        self.spans.iter().all(|&(_, _, delta)| delta == 0)
    }
}

/// An immutable, cache-friendly snapshot of a built [`Graph`].
///
/// Node ids are shared with the source graph (the pool indices are
/// already dense `u32`s), so a [`NodeId`] means the same node before
/// and after freezing. Edges get fresh dense [`EdgeId`]s in CSR order:
/// all edges out of node 0, then node 1, and so on, each adjacency run
/// in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenGraph {
    pub(crate) ignore_case: bool,
    /// All node names, concatenated; `name_off` has n+1 offsets.
    pub(crate) name_data: String,
    pub(crate) name_off: Vec<u32>,
    pub(crate) flags: Vec<NodeFlags>,
    pub(crate) adjust: Vec<i64>,
    /// CSR row starts; `row_start[n]..row_start[n+1]` indexes `edges`.
    pub(crate) row_start: Vec<u32>,
    /// All edges, packed, in CSR order; costs carry the tail's
    /// `adjust` bias (clamped at zero).
    pub(crate) edges: Vec<FrozenEdge>,
    /// Pre-`adjust` costs, kept only for edges whose tail carries a
    /// bias (rare): the bias must not apply when the tail is the
    /// mapping source.
    pub(crate) raw_cost: HashMap<u32, Cost>,
    /// Global (non-`private`) name lookup, folded when `ignore_case`.
    pub(crate) index: HashMap<Box<str>, u32>,
}

impl FrozenGraph {
    /// Builds the CSR snapshot. Equivalent to [`Graph::freeze`].
    pub fn freeze(g: &Graph) -> FrozenGraph {
        let n = g.node_count();
        let mut name_data = String::new();
        let mut name_off = Vec::with_capacity(n + 1);
        let mut flags = Vec::with_capacity(n);
        let mut adjust = Vec::with_capacity(n);
        let mut index: HashMap<Box<str>, u32> = HashMap::with_capacity(n);

        let mut row_start: Vec<u32> = Vec::with_capacity(n + 1);
        let mut edges: Vec<FrozenEdge> = Vec::new();
        let mut raw_cost: HashMap<u32, Cost> = HashMap::new();

        // Scratch reused per node: adjacency in declaration order.
        let mut row: Vec<(NodeId, Cost, RouteOp, LinkFlags)> = Vec::new();

        for (id, node) in g.iter_nodes() {
            name_off.push(name_data.len() as u32);
            name_data.push_str(g.name(id));
            flags.push(node.flags);
            adjust.push(node.adjust);
            if !node.flags.contains(NodeFlags::PRIVATE) {
                let key = if g.ignore_case() {
                    g.name(id).to_ascii_lowercase()
                } else {
                    g.name(id).to_string()
                };
                index.entry(key.into()).or_insert(id.raw());
            }

            row_start.push(edges.len() as u32);
            if !node.is_mappable() {
                continue; // Deleted nodes keep their slot but lose all edges.
            }
            // The adjacency list is stored newest-first; reverse it so
            // CSR order is declaration order and the "smaller link id
            // wins" tie break keeps its meaning.
            row.clear();
            for (_, l) in g.links_from(id) {
                if l.flags.contains(LinkFlags::DELETED) || !g.node_ref(l.to).is_mappable() {
                    continue;
                }
                row.push((l.to, l.cost, l.op, l.flags));
            }
            row.reverse();
            // Collapse exact-duplicate parallel links (same target,
            // operator and flags) to the cheapest declaration. Links
            // that differ in role (alias vs explicit vs net edge) have
            // different mapping semantics and are all kept.
            let base = edges.len();
            'edges: for &(to, cost, op, lflags) in &row {
                let cand = FrozenEdge::new(to, cost, op, lflags);
                for e in &mut edges[base..] {
                    if e.to == cand.to
                        && e.op_ch == cand.op_ch
                        && e.op_dir == cand.op_dir
                        && e.flags == cand.flags
                    {
                        if cand.cost < e.cost {
                            e.cost = cand.cost;
                        }
                        continue 'edges;
                    }
                }
                edges.push(cand);
            }
            // Fold the tail's `adjust` bias into the stored cost,
            // remembering the raw value for source-edge exemption.
            if node.adjust != 0 {
                for (e, edge) in edges.iter_mut().enumerate().skip(base) {
                    raw_cost.insert(e as u32, edge.cost);
                    edge.cost = apply_adjust(edge.cost, node.adjust);
                }
            }
        }
        name_off.push(name_data.len() as u32);
        row_start.push(edges.len() as u32);

        // Private hosts are file-scoped, but `-l`/`-t` may still name
        // one when no global host claims the name; fall back to the
        // first private declaration then.
        for (id, node) in g.iter_nodes() {
            if node.flags.contains(NodeFlags::PRIVATE) {
                let key = if g.ignore_case() {
                    g.name(id).to_ascii_lowercase()
                } else {
                    g.name(id).to_string()
                };
                index.entry(key.into()).or_insert(id.raw());
            }
        }

        FrozenGraph {
            ignore_case: g.ignore_case(),
            name_data,
            name_off,
            flags,
            adjust,
            row_start,
            edges,
            raw_cost,
            index,
        }
    }

    /// Rebuilds the snapshot with `extra` edges appended to their tail
    /// nodes' adjacency runs (the back-link pass's "invent links ...
    /// and continue"). Costs are given raw; the tail's `adjust` bias is
    /// applied exactly as [`freeze`](FrozenGraph::freeze) would.
    /// Appending keeps every existing within-row edge order, so tie
    /// breaks against older edges are unchanged.
    pub fn with_edges_appended(
        &self,
        extra: &[(NodeId, NodeId, Cost, RouteOp, LinkFlags)],
    ) -> FrozenGraph {
        let n = self.node_count();
        let mut per_node: Vec<Vec<(NodeId, Cost, RouteOp, LinkFlags)>> = vec![Vec::new(); n];
        for &(from, to, cost, op, lflags) in extra {
            per_node[from.index()].push((to, cost, op, lflags));
        }

        let m = self.edges.len() + extra.len();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut edges: Vec<FrozenEdge> = Vec::with_capacity(m);
        let mut raw_cost = HashMap::new();

        for (u, extras) in per_node.iter().enumerate() {
            row_start.push(edges.len() as u32);
            for e in self.row(u) {
                if let Some(&raw) = self.raw_cost.get(&(e as u32)) {
                    raw_cost.insert(edges.len() as u32, raw);
                }
                edges.push(self.edges[e]);
            }
            let bias = self.adjust[u];
            for &(to, cost, op, lflags) in extras {
                if bias != 0 {
                    raw_cost.insert(edges.len() as u32, cost);
                }
                edges.push(FrozenEdge::new(
                    to,
                    if bias != 0 {
                        apply_adjust(cost, bias)
                    } else {
                        cost
                    },
                    op,
                    lflags,
                ));
            }
        }
        row_start.push(edges.len() as u32);

        FrozenGraph {
            ignore_case: self.ignore_case,
            name_data: self.name_data.clone(),
            name_off: self.name_off.clone(),
            flags: self.flags.clone(),
            adjust: self.adjust.clone(),
            row_start,
            edges,
            raw_cost,
            index: self.index.clone(),
        }
    }

    /// Rebuilds the snapshot with the adjacency rows of the patched
    /// nodes replaced wholesale, reusing the CSR prefix before the
    /// first dirty row byte-for-byte (only the suffix shifts). This is
    /// the incremental-freeze path: an entry-level map edit touches a
    /// handful of rows, and every other node keeps its id and — up to a
    /// uniform index shift — its edge range.
    ///
    /// Patch edges are given raw, in declaration order; the same
    /// settling [`freeze`](FrozenGraph::freeze) performs is applied per
    /// replaced row: edges to deleted nodes are dropped, exact
    /// duplicates collapse to the cheapest, and the tail's `adjust`
    /// bias is folded in (raw cost kept on the side). A patch for a
    /// deleted node yields an empty row, as freezing would.
    ///
    /// `patches` must be sorted by node id, without duplicates. The
    /// returned [`EdgeShift`] maps the old snapshot's edge ids into the
    /// new one, `None` for edges inside replaced rows.
    pub fn with_rows_replaced(&self, patches: &[RowPatch]) -> (FrozenGraph, EdgeShift) {
        debug_assert!(
            patches.windows(2).all(|w| w[0].node < w[1].node),
            "patches must be sorted by node id, without duplicates"
        );
        if patches.is_empty() {
            return (self.clone(), EdgeShift { spans: Vec::new() });
        }
        let n = self.node_count();
        let first = patches[0].node.index();
        assert!(
            patches.last().unwrap().node.index() < n,
            "patch for a node outside the snapshot"
        );

        // Reuse the untouched prefix: row starts for nodes 0..=first
        // and every edge before the first dirty row.
        let cut = self.row_start[first] as usize;
        let mut row_start: Vec<u32> = self.row_start[..=first].to_vec();
        let mut edges: Vec<FrozenEdge> = self.edges[..cut].to_vec();
        let mut raw_cost: HashMap<u32, Cost> = HashMap::new();
        let mut spans: Vec<(u32, u32, i64)> = Vec::with_capacity(patches.len());

        let mut next_patch = 0usize;
        for u in first..n {
            let old = self.row(u);
            if next_patch < patches.len() && patches[next_patch].node.index() == u {
                let patch = &patches[next_patch];
                next_patch += 1;
                let base = edges.len();
                if self.is_mappable(NodeId::from_raw(u as u32)) {
                    'edges: for &(to, cost, op, lflags) in &patch.edges {
                        if lflags.contains(LinkFlags::DELETED) || !self.is_mappable(to) {
                            continue;
                        }
                        let cand = FrozenEdge::new(to, cost, op, lflags);
                        for e in &mut edges[base..] {
                            if e.to == cand.to
                                && e.op_ch == cand.op_ch
                                && e.op_dir == cand.op_dir
                                && e.flags == cand.flags
                            {
                                if cand.cost < e.cost {
                                    e.cost = cand.cost;
                                }
                                continue 'edges;
                            }
                        }
                        edges.push(cand);
                    }
                    let bias = self.adjust[u];
                    if bias != 0 {
                        for (e, edge) in edges.iter_mut().enumerate().skip(base) {
                            raw_cost.insert(e as u32, edge.cost);
                            edge.cost = apply_adjust(edge.cost, bias);
                        }
                    }
                }
                // Cumulative shift for every old edge after this row.
                let delta = edges.len() as i64 - old.end as i64;
                spans.push((old.start as u32, old.end as u32, delta));
            } else {
                edges.extend_from_slice(&self.edges[old]);
            }
            row_start.push(edges.len() as u32);
        }

        let shift = EdgeShift { spans };
        // Raw-cost sidecar entries outside the dirty rows follow their
        // edges; entries inside were re-derived (or dropped) above.
        for (&k, &v) in &self.raw_cost {
            if let Some(nk) = shift.map(EdgeId::from_raw(k)) {
                raw_cost.insert(nk.raw(), v);
            }
        }

        (
            FrozenGraph {
                ignore_case: self.ignore_case,
                name_data: self.name_data.clone(),
                name_off: self.name_off.clone(),
                flags: self.flags.clone(),
                adjust: self.adjust.clone(),
                row_start,
                edges,
                raw_cost,
                index: self.index.clone(),
            },
            shift,
        )
    }

    /// Whether name lookups fold case.
    pub fn ignore_case(&self) -> bool {
        self.ignore_case
    }

    /// Number of nodes (deleted and private nodes keep their slots).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.flags.len()
    }

    /// Number of edges that survived freezing.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node's display name.
    #[inline]
    pub fn name(&self, id: NodeId) -> &str {
        let i = id.index();
        &self.name_data[self.name_off[i] as usize..self.name_off[i + 1] as usize]
    }

    /// Looks up a host by name. Global names win; a name claimed only
    /// by `private` declarations resolves to the first of them (the
    /// file-scoped shadowing that existed during parsing is gone once
    /// frozen, but `-l`/`-t` naming a private-only host still works).
    pub fn id_of(&self, name: &str) -> Option<NodeId> {
        let id = if self.ignore_case {
            self.index.get(name.to_ascii_lowercase().as_str())
        } else {
            self.index.get(name)
        };
        id.map(|&raw| NodeId::from_raw(raw))
    }

    /// The node's flags.
    #[inline]
    pub fn flags(&self, id: NodeId) -> NodeFlags {
        self.flags[id.index()]
    }

    /// The node's `adjust` bias (already folded into its out-edge
    /// costs; exposed for the source-edge exemption and reporting).
    #[inline]
    pub fn adjust(&self, id: NodeId) -> i64 {
        self.adjust[id.index()]
    }

    /// Whether the node is a network placeholder (including domains).
    #[inline]
    pub fn is_net(&self, id: NodeId) -> bool {
        self.flags[id.index()].intersects(NodeFlags::NET | NodeFlags::DOMAIN)
    }

    /// Whether the node is a domain.
    #[inline]
    pub fn is_domain(&self, id: NodeId) -> bool {
        self.flags[id.index()].contains(NodeFlags::DOMAIN)
    }

    /// Whether entering the node requires a gateway.
    #[inline]
    pub fn is_gated(&self, id: NodeId) -> bool {
        self.flags[id.index()].intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
    }

    /// Whether the mapping phase should consider this node at all.
    #[inline]
    pub fn is_mappable(&self, id: NodeId) -> bool {
        !self.flags[id.index()].contains(NodeFlags::DELETED)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId::from_raw)
    }

    /// The CSR edge range of `id`, as raw indices into the edge arrays.
    #[inline]
    pub fn row(&self, id: usize) -> Range<usize> {
        self.row_start[id] as usize..self.row_start[id + 1] as usize
    }

    /// Iterates the out-edges of `id` in declaration order.
    #[inline]
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = EdgeId> {
        self.row(id.index()).map(|e| EdgeId(e as u32))
    }

    /// Out-degree after freezing.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.row(id.index()).len()
    }

    /// The packed edge record.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> FrozenEdge {
        self.edges[e.index()]
    }

    /// The packed edges of `id` plus the edge id of the first, for the
    /// hot loop: one bounds check per node, then slice iteration.
    #[inline]
    pub fn edge_slice(&self, id: NodeId) -> (u32, &[FrozenEdge]) {
        let r = self.row(id.index());
        (r.start as u32, &self.edges[r])
    }

    /// The edge's head (target) node.
    #[inline]
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].to()
    }

    /// The edge's cost, with the tail's `adjust` bias applied.
    #[inline]
    pub fn edge_cost(&self, e: EdgeId) -> Cost {
        self.edges[e.index()].cost()
    }

    /// The edge's cost *without* the tail's `adjust` bias — what the
    /// relaxation must use when the tail is the mapping source.
    #[inline]
    pub fn edge_raw_cost(&self, e: EdgeId) -> Cost {
        self.raw_cost
            .get(&e.raw())
            .copied()
            .unwrap_or_else(|| self.edges[e.index()].cost())
    }

    /// The edge's routing operator.
    #[inline]
    pub fn edge_op(&self, e: EdgeId) -> RouteOp {
        self.edges[e.index()].op()
    }

    /// The edge's flags.
    #[inline]
    pub fn edge_flags(&self, e: EdgeId) -> LinkFlags {
        self.edges[e.index()].flags()
    }

    /// Whether a live BACK edge `from -> to` already exists (the
    /// back-link pass invents each reverse link at most once).
    pub fn has_back_edge(&self, from: NodeId, to: NodeId) -> bool {
        let (_, row) = self.edge_slice(from);
        row.iter()
            .any(|e| e.to() == to && e.flags().contains(LinkFlags::BACK))
    }
}

impl Graph {
    /// Freezes the built graph into its immutable CSR snapshot (see
    /// [`FrozenGraph`]).
    pub fn freeze(&self) -> FrozenGraph {
        FrozenGraph::freeze(self)
    }
}

/// Applies an `adjust` bias to a cost, clamping into the `Cost` range.
#[inline]
fn apply_adjust(cost: Cost, bias: i64) -> Cost {
    ((cost as i128) + (bias as i128)).clamp(0, Cost::MAX as i128) as Cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::INF;
    use crate::link::RouteOp;

    #[test]
    fn csr_mirrors_declaration_order() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, c, 20, RouteOp::ARPA);
        let f = g.freeze();
        let out: Vec<_> = f.out_edges(a).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(
            f.edge_target(out[0]),
            b,
            "declaration order, not list order"
        );
        assert_eq!(f.edge_target(out[1]), c);
        assert_eq!(f.edge_cost(out[0]), 10);
        assert_eq!(f.edge_op(out[1]), RouteOp::ARPA);
        assert_eq!(f.edge_count(), 2);
        assert_eq!(f.degree(a), 2);
        assert_eq!(f.degree(b), 0);
    }

    #[test]
    fn deleted_nodes_lose_both_directions() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(b, c, 10, RouteOp::UUCP);
        g.declare_link(a, c, 99, RouteOp::UUCP);
        g.delete_node(b);
        let f = g.freeze();
        assert!(!f.is_mappable(b));
        assert_eq!(f.degree(b), 0, "out-edges dropped");
        let targets: Vec<_> = f.out_edges(a).map(|e| f.edge_target(e)).collect();
        assert_eq!(targets, vec![c], "in-edges dropped too");
    }

    #[test]
    fn deleted_links_dropped() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.delete_link(a, b);
        let f = g.freeze();
        assert_eq!(f.degree(a), 0);
    }

    #[test]
    fn exact_parallel_duplicates_collapse_to_cheapest() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        // declare_link dedups explicit links itself, so build the
        // parallel pair with raw adds (as the back-link pass might).
        g.add_raw_link(a, b, 30, RouteOp::UUCP, LinkFlags::empty());
        g.add_raw_link(a, b, 10, RouteOp::UUCP, LinkFlags::empty());
        // A different role to the same target is kept.
        g.add_raw_link(a, b, 5, RouteOp::UUCP, LinkFlags::ALIAS);
        let f = g.freeze();
        let out: Vec<_> = f.out_edges(a).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(f.edge_cost(out[0]), 10, "cheapest duplicate wins");
        assert!(f.edge_flags(out[1]).contains(LinkFlags::ALIAS));
    }

    #[test]
    fn adjust_folds_into_costs_with_raw_kept() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.adjust_node(a, 100);
        let f = g.freeze();
        let e = f.out_edges(a).next().unwrap();
        assert_eq!(f.edge_cost(e), 110);
        assert_eq!(f.edge_raw_cost(e), 10);
        assert_eq!(f.adjust(a), 100);

        // Negative bias clamps at zero but the raw cost survives.
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.adjust_node(a, -100);
        let f = g.freeze();
        let e = f.out_edges(a).next().unwrap();
        assert_eq!(f.edge_cost(e), 0);
        assert_eq!(f.edge_raw_cost(e), 10);
    }

    #[test]
    fn name_lookup_and_case_folding() {
        let mut g = Graph::with_ignore_case(true);
        let a = g.node("UNC");
        let f = g.freeze();
        assert_eq!(f.id_of("unc"), Some(a));
        assert_eq!(f.id_of("UNC"), Some(a));
        assert_eq!(f.name(a), "UNC", "display keeps the first spelling");
        assert!(f.id_of("duke").is_none());
    }

    #[test]
    fn private_nodes_shadowed_by_globals_in_lookup() {
        let mut g = Graph::new();
        g.begin_file("one");
        let global = g.node("bilbo");
        g.begin_file("two");
        let private = g.declare_private("bilbo");
        let f = g.freeze();
        assert_eq!(f.id_of("bilbo"), Some(global));
        assert_ne!(f.id_of("bilbo"), Some(private));
        assert_eq!(f.name(private), "bilbo", "still has its display name");
    }

    #[test]
    fn private_only_names_resolve_as_fallback() {
        // No global claims the name: `-l wiretap-bilbo` must still
        // find the private host.
        let mut g = Graph::new();
        g.begin_file("wiretap-site");
        let private = g.declare_private("bilbo");
        g.node("wiretap");
        let f = g.freeze();
        assert_eq!(f.id_of("bilbo"), Some(private));
    }

    #[test]
    fn appended_edges_respect_adjust_and_order() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.adjust_node(a, 7);
        let f = g.freeze();
        let f2 = f.with_edges_appended(&[
            (a, c, 20, RouteOp::UUCP, LinkFlags::BACK),
            (b, a, 5, RouteOp::ARPA, LinkFlags::BACK),
        ]);
        let out: Vec<_> = f2.out_edges(a).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(f2.edge_target(out[0]), b, "existing edges first");
        assert_eq!(f2.edge_cost(out[0]), 17, "existing bias preserved");
        assert_eq!(f2.edge_raw_cost(out[0]), 10);
        assert_eq!(f2.edge_cost(out[1]), 27, "appended edge biased too");
        assert_eq!(f2.edge_raw_cost(out[1]), 20);
        assert!(f2.has_back_edge(a, c));
        assert!(f2.has_back_edge(b, a));
        assert!(!f.has_back_edge(a, c), "original untouched");
        assert_eq!(f2.edge_count(), f.edge_count() + 2);
    }

    #[test]
    fn flags_and_predicates_survive() {
        let mut g = Graph::new();
        let net = g.node("NET");
        let d = g.node(".edu");
        let h = g.node("host");
        g.declare_network(net, &[(h, 50)], RouteOp::UUCP);
        g.mark_gated(net);
        g.mark_dead(h);
        let f = g.freeze();
        assert!(f.is_net(net) && f.is_gated(net) && !f.is_domain(net));
        assert!(f.is_domain(d) && f.is_gated(d) && f.is_net(d));
        assert!(f.flags(h).contains(NodeFlags::DEAD));
        assert!(f.is_mappable(h));
        // Network edges keep their roles and the zero exit cost.
        let entry = f.out_edges(h).next().unwrap();
        assert!(f.edge_flags(entry).contains(LinkFlags::NET_IN));
        assert_eq!(f.edge_cost(entry), 50);
        let exit = f.out_edges(net).next().unwrap();
        assert!(f.edge_flags(exit).contains(LinkFlags::NET_OUT));
        assert_eq!(f.edge_cost(exit), 0);
    }

    #[test]
    fn row_replacement_matches_cold_freeze() {
        // Build a -> {b, c}, b -> {c}, c -> {a}; then replace b's row
        // with {a, c} and check the patched snapshot equals freezing
        // the same world cold.
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, c, 20, RouteOp::UUCP);
        g.declare_link(b, c, 30, RouteOp::UUCP);
        g.declare_link(c, a, 40, RouteOp::UUCP);
        let f = g.freeze();

        let (patched, shift) = f.with_rows_replaced(&[RowPatch {
            node: b,
            edges: vec![
                (a, 5, RouteOp::UUCP, LinkFlags::empty()),
                (c, 35, RouteOp::UUCP, LinkFlags::empty()),
            ],
        }]);

        let mut g2 = Graph::new();
        let a2 = g2.node("a");
        let b2 = g2.node("b");
        let c2 = g2.node("c");
        g2.declare_link(a2, b2, 10, RouteOp::UUCP);
        g2.declare_link(a2, c2, 20, RouteOp::UUCP);
        g2.declare_link(b2, a2, 5, RouteOp::UUCP);
        g2.declare_link(b2, c2, 35, RouteOp::UUCP);
        g2.declare_link(c2, a2, 40, RouteOp::UUCP);
        assert_eq!(patched, g2.freeze(), "patched snapshot == cold freeze");

        // Prefix edges keep their ids; b's old row maps to None; c's
        // row shifts by the row-size delta (+1).
        let a_edges: Vec<_> = f.out_edges(a).collect();
        assert_eq!(shift.map(a_edges[0]), Some(a_edges[0]));
        assert_eq!(shift.map(a_edges[1]), Some(a_edges[1]));
        let b_edge = f.out_edges(b).next().unwrap();
        assert_eq!(shift.map(b_edge), None);
        let c_edge = f.out_edges(c).next().unwrap();
        assert_eq!(shift.map(c_edge), Some(EdgeId::from_raw(c_edge.raw() + 1)));
        assert!(!shift.is_identity_outside_rows());
        assert_eq!(
            patched.edge_target(shift.map(c_edge).unwrap()),
            f.edge_target(c_edge)
        );
    }

    #[test]
    fn row_replacement_settles_like_freeze() {
        // Duplicate collapse, deleted-target drop and adjust folding
        // must all happen inside a replaced row.
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        let dead = g.node("gone");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.adjust_node(a, 7);
        g.delete_node(dead);
        let f = g.freeze();

        let (patched, shift) = f.with_rows_replaced(&[RowPatch {
            node: a,
            edges: vec![
                (b, 30, RouteOp::UUCP, LinkFlags::empty()),
                (b, 10, RouteOp::UUCP, LinkFlags::empty()), // dup, cheaper
                (dead, 1, RouteOp::UUCP, LinkFlags::empty()), // dropped
                (c, 20, RouteOp::UUCP, LinkFlags::empty()),
            ],
        }]);
        let out: Vec<_> = patched.out_edges(a).collect();
        assert_eq!(out.len(), 2, "dup collapsed, deleted target dropped");
        assert_eq!(patched.edge_cost(out[0]), 17, "adjust folded in");
        assert_eq!(patched.edge_raw_cost(out[0]), 10, "raw kept");
        assert_eq!(patched.edge_cost(out[1]), 27);
        assert_eq!(shift.map(f.out_edges(a).next().unwrap()), None);

        // Patching a deleted node keeps its row empty.
        let (patched, _) = f.with_rows_replaced(&[RowPatch {
            node: dead,
            edges: vec![(b, 1, RouteOp::UUCP, LinkFlags::empty())],
        }]);
        assert_eq!(patched.degree(dead), 0, "deleted nodes stay edgeless");
    }

    #[test]
    fn cost_only_patch_is_identity_shift() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(b, a, 10, RouteOp::UUCP);
        let f = g.freeze();
        let (patched, shift) = f.with_rows_replaced(&[RowPatch {
            node: a,
            edges: vec![(b, 99, RouteOp::UUCP, LinkFlags::empty())],
        }]);
        assert!(shift.is_identity_outside_rows());
        let e = f.out_edges(b).next().unwrap();
        assert_eq!(shift.map(e), Some(e));
        assert_eq!(patched.edge_cost(patched.out_edges(a).next().unwrap()), 99);
        // Empty patch set: a plain clone.
        let (same, shift) = f.with_rows_replaced(&[]);
        assert_eq!(same, f);
        assert_eq!(shift.map(e), Some(e));
    }

    #[test]
    fn huge_biases_saturate_without_overflow() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, Cost::MAX - 5, RouteOp::UUCP);
        g.adjust_node(a, i64::MAX);
        let f = g.freeze();
        let e = f.out_edges(a).next().unwrap();
        assert_eq!(f.edge_cost(e), Cost::MAX, "saturates, no overflow");
        assert_eq!(f.edge_raw_cost(e), Cost::MAX - 5);
        // And a plain INF edge keeps its value untouched.
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, INF, RouteOp::UUCP);
        let f = g.freeze();
        let e = f.out_edges(a).next().unwrap();
        assert_eq!(f.edge_cost(e), INF);
    }
}
