//! Graph statistics: sparsity, degree distribution, connectivity.
//!
//! The paper leans on structural facts about the maps — "the graph
//! described by the USENET data is sparse, i.e., the number of edges e
//! is proportional to v" — and the generator's tests need to verify
//! that the synthetic universe has the same shape. This module computes
//! those facts.

use crate::flags::{LinkFlags, NodeFlags};
use crate::graph::{Graph, NodeId};

/// Structural summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Mappable nodes (not deleted).
    pub nodes: usize,
    /// Live links (not deleted).
    pub links: usize,
    /// Network placeholder nodes (including domains).
    pub nets: usize,
    /// Domain nodes.
    pub domains: usize,
    /// Private nodes.
    pub private: usize,
    /// Dead nodes.
    pub dead: usize,
    /// Mean out-degree over mappable nodes.
    pub mean_degree: f64,
    /// Largest out-degree.
    pub max_degree: usize,
    /// e / v — the paper's sparsity measure.
    pub sparsity: f64,
    /// Number of weakly connected components.
    pub components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
}

/// Computes the summary.
pub fn stats(g: &Graph) -> GraphStats {
    let mut nodes = 0usize;
    let mut links = 0usize;
    let mut nets = 0usize;
    let mut domains = 0usize;
    let mut private = 0usize;
    let mut dead = 0usize;
    let mut max_degree = 0usize;

    let mut dsu = Dsu::new(g.node_count());
    for (id, node) in g.iter_nodes() {
        if !node.is_mappable() {
            continue;
        }
        nodes += 1;
        if node.is_net() {
            nets += 1;
        }
        if node.is_domain() {
            domains += 1;
        }
        if node.flags.contains(NodeFlags::PRIVATE) {
            private += 1;
        }
        if node.flags.contains(NodeFlags::DEAD) {
            dead += 1;
        }
        let mut degree = 0usize;
        for (_, l) in g.links_from(id) {
            if l.flags.contains(LinkFlags::DELETED) || !g.node_ref(l.to).is_mappable() {
                continue;
            }
            degree += 1;
            links += 1;
            dsu.union(id.index(), l.to.index());
        }
        max_degree = max_degree.max(degree);
    }

    let mut components = 0usize;
    let mut largest = 0usize;
    let mut sizes = std::collections::HashMap::new();
    for (id, node) in g.iter_nodes() {
        if node.is_mappable() {
            let root = dsu.find(id.index());
            let c = sizes.entry(root).or_insert(0usize);
            *c += 1;
            largest = largest.max(*c);
        }
    }
    components += sizes.len();

    GraphStats {
        nodes,
        links,
        nets,
        domains,
        private,
        dead,
        mean_degree: if nodes == 0 {
            0.0
        } else {
            links as f64 / nodes as f64
        },
        max_degree,
        sparsity: if nodes == 0 {
            0.0
        } else {
            links as f64 / nodes as f64
        },
        components,
        largest_component: largest,
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree
/// `d` (the tail is summed into the last bucket).
pub fn degree_histogram(g: &Graph, buckets: usize) -> Vec<usize> {
    let mut hist = vec![0usize; buckets.max(1)];
    for (id, node) in g.iter_nodes() {
        if !node.is_mappable() {
            continue;
        }
        let d = g
            .links_from(id)
            .filter(|(_, l)| !l.flags.contains(LinkFlags::DELETED))
            .count();
        let slot = d.min(hist.len() - 1);
        hist[slot] += 1;
    }
    hist
}

/// Union-find over dense node indices (weak connectivity).
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            // Path halving.
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

/// Hosts with no live links in either direction (isolated declarations).
pub fn isolated_hosts(g: &Graph) -> Vec<NodeId> {
    let mut touched = vec![false; g.node_count()];
    for (id, node) in g.iter_nodes() {
        if !node.is_mappable() {
            continue;
        }
        for (_, l) in g.links_from(id) {
            if !l.flags.contains(LinkFlags::DELETED) {
                touched[id.index()] = true;
                touched[l.to.index()] = true;
            }
        }
    }
    g.iter_nodes()
        .filter(|(id, n)| n.is_mappable() && !touched[id.index()])
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, RouteOp};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        let _lonely = g.node("lonely");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(b, c, 10, RouteOp::UUCP);
        g.declare_link(b, a, 10, RouteOp::UUCP);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let s = stats(&sample());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.links, 3);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 0.75).abs() < 1e-9);
    }

    #[test]
    fn components() {
        let s = stats(&sample());
        assert_eq!(s.components, 2, "abc + lonely");
        assert_eq!(s.largest_component, 3);
    }

    #[test]
    fn deleted_excluded() {
        let mut g = sample();
        let b = g.try_node("b").unwrap();
        g.delete_node(b);
        let s = stats(&g);
        assert_eq!(s.nodes, 3);
        // Every link touched b, so none survive: three singletons.
        assert_eq!(s.links, 0);
        assert_eq!(s.components, 3);
    }

    #[test]
    fn histogram_shapes() {
        let h = degree_histogram(&sample(), 4);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[0], 2, "c and lonely have no out-links");
        assert_eq!(h[1], 1, "a has one");
        assert_eq!(h[2], 1, "b has two");
    }

    #[test]
    fn isolated() {
        let g = sample();
        let iso = isolated_hosts(&g);
        assert_eq!(iso.len(), 1);
        assert_eq!(g.name(iso[0]), "lonely");
    }

    #[test]
    fn nets_and_flags_counted() {
        let mut g = Graph::new();
        let n = g.node("NET");
        let d = g.node(".edu");
        let m = g.node("m");
        g.declare_network(n, &[(m, 10)], RouteOp::UUCP);
        g.declare_link(m, d, 10, RouteOp::UUCP);
        g.mark_dead(m);
        let s = stats(&g);
        assert_eq!(s.nets, 2, "NET and .edu");
        assert_eq!(s.domains, 1);
        assert_eq!(s.dead, 1);
    }
}
