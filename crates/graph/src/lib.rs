//! Connectivity-graph representation for the pathalias reproduction.
//!
//! The paper models "a set of hosts and networks, called *nodes*, with
//! communication links among them" as a directed graph held in an
//! adjacency-list representation: each node points at a singly-linked
//! list of *links*, and each link carries a destination, a non-negative
//! cost, a routing operator, and flags. This crate reproduces that
//! layout with index-based pools (the safe Rust idiom for the original's
//! pointer soup) plus everything the input semantics need:
//!
//! * [`Graph`] — node/link pools, the host-name table, and file-scoped
//!   `private` name resolution;
//! * [`FrozenGraph`] — the immutable compressed-sparse-row snapshot
//!   ([`Graph::freeze`]) the mapping and printing phases traverse;
//! * [`snapshot`] — PAGF1, the versioned, checksummed on-disk form of
//!   a frozen graph, for instant daemon cold starts;
//! * [`reverse`] — the transpose CSR ([`FrozenGraph::reverse`])
//!   point-to-point search runs its backward side over, optionally
//!   persisted as a PAGF1 section;
//! * [`ch`] — the contraction hierarchy ([`ChIndex`]) built at freeze
//!   time over a lower-bound edge metric, the shortcut graph behind the
//!   fast `PATH` tier, also persisted as an optional PAGF1 section;
//! * [`Node`] / [`Link`] with [`NodeFlags`] / [`LinkFlags`];
//! * networks as single nodes with paired member edges (the "clique as
//!   star" representation that avoids the ARPANET's "millions of
//!   edges");
//! * aliases as paired zero-cost flagged edges ("aliases are a property
//!   of edges, not vertices");
//! * domains (names beginning with `.`), which are always gatewayed;
//! * [`Warning`] diagnostics for duplicate links, self links, collisions
//!   and the rest;
//! * [`dot`] (Graphviz export), [`unparse`] (write a graph back out as
//!   pathalias input) and [`boxed`] (a pointer-per-object replica of the
//!   1986 memory layout for the allocator experiment).
//!
//! # Examples
//!
//! ```
//! use pathalias_graph::{Graph, RouteOp};
//!
//! let mut g = Graph::new();
//! let unc = g.node("unc");
//! let duke = g.node("duke");
//! g.declare_link(unc, duke, 500, RouteOp::UUCP);
//! assert_eq!(g.name(unc), "unc");
//! assert_eq!(g.links_from(unc).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod boxed;
pub mod ch;
mod cost;
mod diag;
pub mod dot;
mod flags;
pub mod frozen;
#[allow(clippy::module_inception)]
mod graph;
mod link;
mod node;
pub mod reverse;
pub mod snapshot;
pub mod stats;
pub mod unparse;

pub use ch::{ChEdge, ChIndex};
pub use cost::{symbol_cost, symbol_table, Cost, DEFAULT_COST, INF};
pub use diag::Warning;
pub use flags::{LinkFlags, NodeFlags};
pub use frozen::{EdgeId, EdgeShift, FrozenEdge, FrozenGraph, RowPatch};
pub use graph::{FileId, Graph, LinkId, NodeId};
pub use link::{Dir, Link, RouteOp};
pub use node::Node;
pub use reverse::ReverseGraph;
pub use snapshot::SnapshotError;
