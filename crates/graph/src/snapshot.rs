//! PAGF1: the on-disk frozen-graph snapshot.
//!
//! The paper's pathalias recomputes the whole world from text on every
//! run. [`Graph::freeze`](crate::Graph::freeze) already pays the
//! parse/build/freeze cost once per *process*; this module pays it
//! once per *map edition*: a [`FrozenGraph`] serializes to a single
//! versioned, checksummed file that a daemon can load back in
//! milliseconds — the frozen-graph analogue of the mailer's PADB1
//! route database, for cold starts instead of lookups.
//!
//! Like `MappedDb`, the reader is the safe-std equivalent of mmap: the
//! file is read once, sequentially, and the packed little-endian
//! arrays decode in one linear pass straight into the CSR arrays — no
//! text parsing, no graph construction, no per-edge allocation. Only
//! the name index (a hash map the file does not store) is rebuilt,
//! with exactly the algorithm [`FrozenGraph::freeze`] uses, so a
//! loaded snapshot is *equal* to the freeze that wrote it
//! (`PartialEq` — and therefore routes byte-identically).
//!
//! # On-disk layout
//!
//! All integers little-endian; `n` nodes, `m` edges, `rc` sidecar
//! entries.
//!
//! ```text
//! offset size       field
//! 0      6          magic "PAGF1\n"
//! 6      1          ignore_case (0 or 1)
//! 7      1          reserved (0)
//! 8      4          node count n (u32)
//! 12     4          edge count m (u32)
//! 16     8          name blob length (u64)
//! 24     4          raw-cost sidecar count rc (u32)
//! 28     4          section flags (bit 0: reverse index present;
//!                   unknown bits reject — see below)
//! 32     8          checksum (see below) of the whole file with this
//!                   field zeroed
//! 40     (n+1)*4    name offsets into the blob (monotone, 0-based)
//! ...    blob       node names, concatenated UTF-8
//! ...    n*2        node flags (u16 bitsets)
//! ...    n*8        adjust biases (i64)
//! ...    (n+1)*4    CSR row starts (monotone, ends at m)
//! ...    m*16       edges: target u32, op char u8, op side u8,
//!                   flags u16, cost u64
//! ...    rc*12      raw-cost sidecar: edge id u32, pre-adjust cost
//!                   u64, ascending by edge id
//! ```
//!
//! With section-flag bit 0 set, the optional **reverse index**
//! section follows the sidecar (see [`ReverseGraph`]):
//!
//! ```text
//! ...    (n+1)*4    reverse CSR row starts by head node (monotone,
//!                   ends at m)
//! ...    m*4        in-edge tail node ids (u32)
//! ...    m*4        in-edge forward edge ids (u32, ascending within
//!                   each row)
//! ```
//!
//! With section-flag bit 1 set, the optional **contraction
//! hierarchy** section follows (after the reverse section when both
//! are present; see [`ChIndex`], written by `pathalias freeze --ch`).
//! Its edge counts live in the section itself, so the reader first
//! bounds-checks the 8-byte count prefix against the file length and
//! only then extends the exact-length equation:
//!
//! ```text
//! ...    4          upward edge count `up` (u32)
//! ...    4          downward edge count `down` (u32)
//! ...    n*4        contraction rank per node (a permutation)
//! ...    (n+1)*4    upward CSR row starts by tail (monotone)
//! ...    up*4       upward edge heads
//! ...    up*8       upward edge weights (lower-bound metric)
//! ...    up*4       upward first child slots
//! ...    up*4       upward second child slots
//! ...    (n+1)*4    downward CSR row starts by head (monotone)
//! ...    down*4     downward edge tails
//! ...    down*8     downward edge weights
//! ...    down*4     downward first child slots
//! ...    down*4     downward second child slots
//! ```
//!
//! The section-flags word was reserved-as-zero in the original PAGF1
//! release, which is what makes the extension version-tolerant in both
//! directions: files written before the reverse or hierarchy sections
//! existed carry zero and still load (derived data is rebuilt or
//! skipped), while a file using a section this reader does not know
//! about is rejected as corrupt instead of being silently misparsed.
//! `docs/FORMATS.md` carries the full section-flag registry.
//!
//! # Checksum
//!
//! The paper's shift-xor fold, widened from bytes to 64-bit words so
//! a megabyte-scale file sums in microseconds: starting from `k = 0`,
//! each little-endian u64 word `w` applies `k = (k << 7) ^ (k >> 57)
//! ^ w`. A trailing partial word is zero-padded and followed by one
//! extra word holding the tail length. The checksum covers the whole
//! file with the checksum field itself read as zero.
//!
//! # Hardening
//!
//! Opening is hardened exactly like the PADB1 `Corrupt` path: bad
//! magic, truncation, counts the file cannot hold (checked *before*
//! any allocation, so an absurd header cannot OOM), checksum
//! mismatches, out-of-range offsets/targets, non-monotone tables,
//! unknown flag bits, and non-UTF-8 names all return
//! [`SnapshotError::Corrupt`] — never a panic.
//!
//! # Examples
//!
//! ```
//! use pathalias_graph::{snapshot, Graph, RouteOp};
//!
//! let mut g = Graph::new();
//! let a = g.node("unc");
//! let b = g.node("duke");
//! g.declare_link(a, b, 500, RouteOp::UUCP);
//! let frozen = g.freeze();
//!
//! let path = std::env::temp_dir().join(format!("doc-{}.pagf", std::process::id()));
//! snapshot::write_snapshot(&frozen, &path).unwrap();
//! let loaded = snapshot::read_snapshot(&path).unwrap();
//! assert_eq!(loaded, frozen);
//! std::fs::remove_file(path).unwrap();
//! ```

use crate::ch::ChIndex;
use crate::cost::Cost;
use crate::flags::{LinkFlags, NodeFlags};
use crate::frozen::{FrozenEdge, FrozenGraph};
use crate::reverse::ReverseGraph;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;

/// The 6-byte file magic (version is part of the magic, PADB1-style).
pub const MAGIC: &[u8; 6] = b"PAGF1\n";

/// Fixed header length in bytes.
const HEADER_LEN: usize = 40;

/// Byte range of the checksum field within the header.
const CHECKSUM_RANGE: std::ops::Range<usize> = 32..40;

/// Bytes per serialized edge record.
const EDGE_LEN: usize = 16;

/// Bytes per raw-cost sidecar entry.
const RAW_COST_LEN: usize = 12;

/// Section-flag bit: the reverse index section follows the sidecar.
const SECTION_REVERSE: u32 = 1;

/// Section-flag bit: the contraction-hierarchy section follows (after
/// the reverse section when both are present).
const SECTION_CH: u32 = 2;

/// Every section flag this reader understands; anything else rejects.
const SECTION_KNOWN: u32 = SECTION_REVERSE | SECTION_CH;

/// Errors from reading or writing a PAGF1 snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a PAGF1 snapshot or is structurally broken.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt<T>(why: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Corrupt(why.into()))
}

/// Serializes the snapshot into its PAGF1 byte image, without any
/// optional sections (section-flags word zero — the original PAGF1
/// wire image, byte for byte).
pub fn to_bytes(g: &FrozenGraph) -> Vec<u8> {
    to_bytes_full(g, None)
}

/// Serializes the snapshot into its PAGF1 byte image, appending the
/// reverse index section when `reverse` is given.
///
/// The caller is responsible for `reverse` actually being the
/// transpose of `g` (debug builds assert it); pass the result of
/// [`FrozenGraph::reverse`].
pub fn to_bytes_full(g: &FrozenGraph, reverse: Option<&ReverseGraph>) -> Vec<u8> {
    to_bytes_all(g, reverse, None)
}

/// Serializes the snapshot with any combination of optional sections:
/// the reverse index and/or the contraction hierarchy.
///
/// As with [`to_bytes_full`], the caller vouches that the sections
/// really describe `g` (debug builds assert both).
pub fn to_bytes_all(
    g: &FrozenGraph,
    reverse: Option<&ReverseGraph>,
    ch: Option<&ChIndex>,
) -> Vec<u8> {
    let n = g.node_count();
    let m = g.edges.len();
    if let Some(rev) = reverse {
        debug_assert!(rev.validate_against(g), "reverse index must match graph");
    }
    if let Some(ch) = ch {
        debug_assert!(ch.validate_against(g), "hierarchy must match graph");
    }
    // The sidecar is a hash map in memory; on disk it is sorted by
    // edge id so the reader can verify it with one linear pass.
    let mut raw_cost: Vec<(u32, Cost)> = g.raw_cost.iter().map(|(&e, &c)| (e, c)).collect();
    raw_cost.sort_unstable_by_key(|&(e, _)| e);

    let total = HEADER_LEN
        + (n + 1) * 4
        + g.name_data.len()
        + n * 2
        + n * 8
        + (n + 1) * 4
        + m * EDGE_LEN
        + raw_cost.len() * RAW_COST_LEN
        + if reverse.is_some() {
            (n + 1) * 4 + m * 4 + m * 4
        } else {
            0
        }
        + ch.map_or(0, |ch| {
            8 + n * 4 + 2 * (n + 1) * 4 + (ch.up_count() + ch.down_count()) * 20
        });
    let mut out = Vec::with_capacity(total);

    out.extend_from_slice(MAGIC);
    out.push(u8::from(g.ignore_case));
    out.push(0);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(g.name_data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(raw_cost.len() as u32).to_le_bytes());
    let mut sections = 0;
    if reverse.is_some() {
        sections |= SECTION_REVERSE;
    }
    if ch.is_some() {
        sections |= SECTION_CH;
    }
    out.extend_from_slice(&sections.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below

    for &off in &g.name_off {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out.extend_from_slice(g.name_data.as_bytes());
    for &f in &g.flags {
        out.extend_from_slice(&f.bits().to_le_bytes());
    }
    for &a in &g.adjust {
        out.extend_from_slice(&a.to_le_bytes());
    }
    for &r in &g.row_start {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for e in &g.edges {
        out.extend_from_slice(&e.to.to_le_bytes());
        out.push(e.op_ch);
        out.push(e.op_dir);
        out.extend_from_slice(&e.flags.bits().to_le_bytes());
        out.extend_from_slice(&e.cost.to_le_bytes());
    }
    for &(e, c) in &raw_cost {
        out.extend_from_slice(&e.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    if let Some(rev) = reverse {
        for &r in &rev.row_start {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &t in &rev.from {
            out.extend_from_slice(&t.to_le_bytes());
        }
        for &e in &rev.edge {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    if let Some(ch) = ch {
        out.extend_from_slice(&(ch.up_count() as u32).to_le_bytes());
        out.extend_from_slice(&(ch.down_count() as u32).to_le_bytes());
        for &r in &ch.rank {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &r in &ch.up_row {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &t in &ch.up_to {
            out.extend_from_slice(&t.to_le_bytes());
        }
        for &w in &ch.up_w {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &a in &ch.up_a {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &b in &ch.up_b {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &r in &ch.down_row {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &f in &ch.down_from {
            out.extend_from_slice(&f.to_le_bytes());
        }
        for &w in &ch.down_w {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &a in &ch.down_a {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &b in &ch.down_b {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    debug_assert_eq!(out.len(), total);

    let sum = checksum(&out);
    out[CHECKSUM_RANGE].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Writes the snapshot to `path` in the PAGF1 format.
///
/// The write is atomic: bytes go to a same-directory temporary file
/// that is renamed over `path`, so an interrupted freeze never leaves
/// a truncated snapshot where a daemon (or `serve --watch`) expects a
/// valid one — the old edition survives until the new one is whole.
pub fn write_snapshot(g: &FrozenGraph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    write_snapshot_full(g, None, path)
}

/// Writes the snapshot plus the optional reverse index section; same
/// atomic-rename discipline as [`write_snapshot`].
pub fn write_snapshot_full(
    g: &FrozenGraph,
    reverse: Option<&ReverseGraph>,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    write_snapshot_all(g, reverse, None, path)
}

/// Writes the snapshot with any combination of optional sections; same
/// atomic-rename discipline as [`write_snapshot`].
pub fn write_snapshot_all(
    g: &FrozenGraph,
    reverse: Option<&ReverseGraph>,
    ch: Option<&ChIndex>,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, to_bytes_all(g, reverse, ch))?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Reads a PAGF1 file back into a [`FrozenGraph`], discarding any
/// optional sections.
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<FrozenGraph, SnapshotError> {
    from_bytes(&std::fs::read(path)?)
}

/// Reads a PAGF1 file back into a [`FrozenGraph`] plus its reverse
/// index section, when the file carries one. `None` means a legacy
/// file (section flags zero) — callers wanting the transpose rebuild
/// it with [`FrozenGraph::reverse`], an O(n + m) counting sort.
pub fn read_snapshot_full(
    path: impl AsRef<Path>,
) -> Result<(FrozenGraph, Option<ReverseGraph>), SnapshotError> {
    from_bytes_full(&std::fs::read(path)?)
}

/// Reads a PAGF1 file back with every optional section it carries:
/// the reverse index and/or the contraction hierarchy. `None` in a
/// slot means the file does not carry that section.
pub fn read_snapshot_all(
    path: impl AsRef<Path>,
) -> Result<(FrozenGraph, Option<ReverseGraph>, Option<ChIndex>), SnapshotError> {
    from_bytes_all(&std::fs::read(path)?)
}

/// One checksum step: the paper's shift-xor mixing, word-wide.
#[inline]
fn mix(k: u64, w: u64) -> u64 {
    (k << 7) ^ (k >> 57) ^ w
}

/// Folds a byte slice into a running checksum, one little-endian u64
/// word at a time; a trailing partial word is zero-padded and tagged
/// with its length.
fn fold_words(mut k: u64, bytes: &[u8]) -> u64 {
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        k = mix(k, u64::from_le_bytes(w.try_into().expect("8 bytes")));
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 8];
        padded[..tail.len()].copy_from_slice(tail);
        k = mix(k, u64::from_le_bytes(padded));
        k = mix(k, tail.len() as u64);
    }
    k
}

/// The file's checksum: the word-wide fold of every byte with the
/// checksum field itself read as zero. The two slices on either side
/// of the field are both 8-byte-aligned, so the word stream is the
/// same as folding one contiguous zero-patched file.
fn checksum(bytes: &[u8]) -> u64 {
    let k = fold_words(0, &bytes[..CHECKSUM_RANGE.start]);
    let k = mix(k, 0);
    fold_words(k, &bytes[CHECKSUM_RANGE.end..])
}

/// A cursor over the payload. All section lengths were validated
/// against the file length up front, so the `take` calls cannot run
/// past the end.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        s
    }
}

#[inline]
fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
}

#[inline]
fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Deserializes a PAGF1 byte image, validating structure end to end
/// and discarding any optional sections.
pub fn from_bytes(bytes: &[u8]) -> Result<FrozenGraph, SnapshotError> {
    from_bytes_full(bytes).map(|(g, _)| g)
}

/// Deserializes a PAGF1 byte image plus its optional reverse index
/// section, validating structure end to end (the reverse arrays are
/// cross-checked against the decoded forward CSR, so a section that
/// lies is `Corrupt`, not a wrong answer). A contraction-hierarchy
/// section, if present, is validated and discarded.
pub fn from_bytes_full(bytes: &[u8]) -> Result<(FrozenGraph, Option<ReverseGraph>), SnapshotError> {
    from_bytes_all(bytes).map(|(g, rev, _)| (g, rev))
}

/// Deserializes a PAGF1 byte image with every optional section it
/// carries. Both sections are validated against the decoded forward
/// CSR ([`ReverseGraph::validate_against`] /
/// [`ChIndex::validate_against`]): a section that lies is `Corrupt`,
/// not a wrong answer.
pub fn from_bytes_all(
    bytes: &[u8],
) -> Result<(FrozenGraph, Option<ReverseGraph>, Option<ChIndex>), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return corrupt(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        ));
    }
    if &bytes[..6] != MAGIC {
        return corrupt(format!("bad magic {:?}", &bytes[..6]));
    }
    let ignore_case = match bytes[6] {
        0 => false,
        1 => true,
        other => return corrupt(format!("ignore_case byte is {other}, not 0/1")),
    };
    if bytes[7] != 0 {
        return corrupt("reserved header byte is not zero");
    }
    let n = le_u32(&bytes[8..12]) as usize;
    let m = le_u32(&bytes[12..16]) as usize;
    let name_len = le_u64(&bytes[16..24]);
    let rc = le_u32(&bytes[24..28]) as usize;
    let sections = le_u32(&bytes[28..32]);
    if sections & !SECTION_KNOWN != 0 {
        return corrupt(format!(
            "unknown section flags {:#010x}: written by a newer pathalias",
            sections & !SECTION_KNOWN
        ));
    }
    let has_reverse = sections & SECTION_REVERSE != 0;
    let has_ch = sections & SECTION_CH != 0;
    let stored_sum = le_u64(&bytes[CHECKSUM_RANGE]);

    // Every section length follows from the four header counts — except
    // the hierarchy's two edge counts, which live at a computable offset
    // inside its own section and are bounds-checked before being read.
    // The file must match the resulting total *exactly* — a mismatch
    // means truncation, an inflated count (which would otherwise ask
    // for an absurd allocation below), or trailing garbage.
    let base: Option<u64> = (|| {
        let n = n as u64;
        let m = m as u64;
        let rev = if has_reverse {
            // rev_row + from + edge
            n.checked_add(1)?
                .checked_mul(4)?
                .checked_add(m.checked_mul(8)?)?
        } else {
            0
        };
        let mut total = HEADER_LEN as u64;
        for part in [
            n.checked_add(1)?.checked_mul(4)?, // name_off
            name_len,                          // name blob
            n.checked_mul(2)?,                 // flags
            n.checked_mul(8)?,                 // adjust
            n.checked_add(1)?.checked_mul(4)?, // row_start
            m.checked_mul(EDGE_LEN as u64)?,   // edges
            (rc as u64).checked_mul(RAW_COST_LEN as u64)?,
            rev, // reverse section
        ] {
            total = total.checked_add(part)?;
        }
        Some(total)
    })();
    let Some(base) = base else {
        return corrupt("header counts overflow");
    };
    let mut ch_counts: Option<(usize, usize)> = None;
    let expected: Option<u64> = if has_ch {
        // The hierarchy's count prefix sits right after the sections
        // the header already sized; it must fit before anything reads
        // through it.
        if (bytes.len() as u64) < base.saturating_add(8) {
            return corrupt("hierarchy section cut off before its counts");
        }
        let at = base as usize;
        let up = le_u32(&bytes[at..at + 4]) as usize;
        let down = le_u32(&bytes[at + 4..at + 8]) as usize;
        ch_counts = Some((up, down));
        (|| {
            let n = n as u64;
            let mut total = base.checked_add(8)?;
            for part in [
                n.checked_mul(4)?,                 // rank
                n.checked_add(1)?.checked_mul(4)?, // up_row
                (up as u64).checked_mul(20)?,      // up to/w/a/b
                n.checked_add(1)?.checked_mul(4)?, // down_row
                (down as u64).checked_mul(20)?,    // down from/w/a/b
            ] {
                total = total.checked_add(part)?;
            }
            Some(total)
        })()
    } else {
        Some(base)
    };
    match expected {
        Some(want) if want == bytes.len() as u64 => {}
        Some(want) => {
            return corrupt(format!(
                "file is {} bytes but the header promises {want}",
                bytes.len()
            ));
        }
        None => return corrupt("header counts overflow"),
    }

    let sum = checksum(bytes);
    if sum != stored_sum {
        return corrupt(format!(
            "checksum mismatch: stored {stored_sum:#018x}, computed {sum:#018x}"
        ));
    }

    let mut r = Reader {
        bytes,
        pos: HEADER_LEN,
    };
    let name_off_bytes = r.take((n + 1) * 4);
    let name_bytes = r.take(name_len as usize);
    let flag_bytes = r.take(n * 2);
    let adjust_bytes = r.take(n * 8);
    let row_bytes = r.take((n + 1) * 4);
    let edge_bytes = r.take(m * EDGE_LEN);
    let raw_cost_bytes = r.take(rc * RAW_COST_LEN);
    let rev_bytes = if has_reverse {
        Some((r.take((n + 1) * 4), r.take(m * 4), r.take(m * 4)))
    } else {
        None
    };
    let ch_bytes = ch_counts.map(|(up, down)| {
        r.take(8); // the count prefix, already decoded
        (
            r.take(n * 4),       // rank
            r.take((n + 1) * 4), // up_row
            r.take(up * 4),      // up_to
            r.take(up * 8),      // up_w
            r.take(up * 4),      // up_a
            r.take(up * 4),      // up_b
            r.take((n + 1) * 4), // down_row
            r.take(down * 4),    // down_from
            r.take(down * 8),    // down_w
            r.take(down * 4),    // down_a
            r.take(down * 4),    // down_b
        )
    });
    debug_assert_eq!(r.pos, bytes.len());

    // Name offsets: monotone from 0 to the blob length.
    let mut name_off = Vec::with_capacity(n + 1);
    for (i, c) in name_off_bytes.chunks_exact(4).enumerate() {
        let off = le_u32(c);
        if u64::from(off) > name_len || name_off.last().is_some_and(|&prev| off < prev) {
            return corrupt(format!("name offset {i} out of order or past the blob"));
        }
        name_off.push(off);
    }
    if name_off[0] != 0 || u64::from(name_off[n]) != name_len {
        return corrupt("name offsets do not span the blob exactly");
    }

    let name_data = match std::str::from_utf8(name_bytes) {
        Ok(s) => s.to_string(),
        Err(_) => return corrupt("name blob is not UTF-8"),
    };
    for (i, &off) in name_off.iter().enumerate() {
        if !name_data.is_char_boundary(off as usize) {
            return corrupt(format!("name offset {i} splits a UTF-8 character"));
        }
    }

    let mut flags = Vec::with_capacity(n);
    for (i, c) in flag_bytes.chunks_exact(2).enumerate() {
        match NodeFlags::from_bits(u16::from_le_bytes(c.try_into().expect("2 bytes"))) {
            Some(f) => flags.push(f),
            None => return corrupt(format!("node {i} has unknown flag bits")),
        }
    }

    let adjust: Vec<i64> = adjust_bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();

    let mut row_start = Vec::with_capacity(n + 1);
    for (i, c) in row_bytes.chunks_exact(4).enumerate() {
        let start = le_u32(c);
        if start as usize > m || row_start.last().is_some_and(|&prev| start < prev) {
            return corrupt(format!("row start {i} out of order or past the edges"));
        }
        row_start.push(start);
    }
    if row_start[0] != 0 || row_start[n] as usize != m {
        return corrupt("row starts do not span the edges exactly");
    }

    let mut edges = Vec::with_capacity(m);
    for (i, c) in edge_bytes.chunks_exact(EDGE_LEN).enumerate() {
        let to = le_u32(&c[0..4]);
        let op_ch = c[4];
        let op_dir = c[5];
        let eflags = u16::from_le_bytes(c[6..8].try_into().expect("2 bytes"));
        let cost = le_u64(&c[8..16]);
        if to as usize >= n {
            return corrupt(format!("edge {i} targets node {to}, past the {n} nodes"));
        }
        if !op_ch.is_ascii() {
            return corrupt(format!("edge {i} has a non-ASCII routing operator"));
        }
        if op_dir > 1 {
            return corrupt(format!("edge {i} has operator side {op_dir}, not 0/1"));
        }
        let Some(flags) = LinkFlags::from_bits(eflags) else {
            return corrupt(format!("edge {i} has unknown flag bits"));
        };
        edges.push(FrozenEdge {
            to,
            op_ch,
            op_dir,
            flags,
            cost,
        });
    }

    let mut raw_cost = HashMap::with_capacity(rc);
    let mut prev: Option<u32> = None;
    for (i, c) in raw_cost_bytes.chunks_exact(RAW_COST_LEN).enumerate() {
        let edge = le_u32(&c[0..4]);
        let cost = le_u64(&c[4..12]);
        if edge as usize >= m {
            return corrupt(format!("raw-cost entry {i} names edge {edge}, past {m}"));
        }
        if prev.is_some_and(|p| edge <= p) {
            return corrupt(format!("raw-cost entry {i} out of order"));
        }
        prev = Some(edge);
        raw_cost.insert(edge, cost);
    }

    // The name index is not stored: it is a pure function of the
    // names and flags, rebuilt with exactly the passes
    // `FrozenGraph::freeze` makes — globals first (first declaration
    // claims the name), then `private` hosts as a fallback for
    // `-l`/`-t` lookups nothing global answers.
    let mut index: HashMap<Box<str>, u32> = HashMap::with_capacity(n);
    for private_pass in [false, true] {
        for (i, f) in flags.iter().enumerate() {
            if f.contains(NodeFlags::PRIVATE) != private_pass {
                continue;
            }
            let name = &name_data[name_off[i] as usize..name_off[i + 1] as usize];
            let key = if ignore_case {
                name.to_ascii_lowercase()
            } else {
                name.to_string()
            };
            index.entry(key.into()).or_insert(i as u32);
        }
    }

    let graph = FrozenGraph {
        ignore_case,
        name_data,
        name_off,
        flags,
        adjust,
        row_start,
        edges,
        raw_cost,
        index,
    };

    // The reverse section is pure derived data, so its validation is
    // simply "is this *the* transpose of the forward CSR we just
    // decoded" — one structural predicate instead of piecemeal range
    // checks.
    let reverse = match rev_bytes {
        None => None,
        Some((rev_row, rev_from, rev_edge)) => {
            let rev = ReverseGraph {
                row_start: rev_row.chunks_exact(4).map(le_u32).collect(),
                from: rev_from.chunks_exact(4).map(le_u32).collect(),
                edge: rev_edge.chunks_exact(4).map(le_u32).collect(),
            };
            if !rev.validate_against(&graph) {
                return corrupt("reverse section is not the transpose of the edges");
            }
            Some(rev)
        }
    };

    // Same treatment for the hierarchy: decode the arrays, then one
    // structural predicate against the forward CSR (see the trust-model
    // notes in [`crate::ch`] for what that does and does not prove).
    let ch = match ch_bytes {
        None => None,
        Some((
            rank,
            up_row,
            up_to,
            up_w,
            up_a,
            up_b,
            down_row,
            down_from,
            down_w,
            down_a,
            down_b,
        )) => {
            let ch = ChIndex {
                rank: rank.chunks_exact(4).map(le_u32).collect(),
                up_row: up_row.chunks_exact(4).map(le_u32).collect(),
                up_to: up_to.chunks_exact(4).map(le_u32).collect(),
                up_w: up_w.chunks_exact(8).map(le_u64).collect(),
                up_a: up_a.chunks_exact(4).map(le_u32).collect(),
                up_b: up_b.chunks_exact(4).map(le_u32).collect(),
                down_row: down_row.chunks_exact(4).map(le_u32).collect(),
                down_from: down_from.chunks_exact(4).map(le_u32).collect(),
                down_w: down_w.chunks_exact(8).map(le_u64).collect(),
                down_a: down_a.chunks_exact(4).map(le_u32).collect(),
                down_b: down_b.chunks_exact(4).map(le_u32).collect(),
            };
            if !ch.validate_against(&graph) {
                return corrupt("hierarchy section is not a hierarchy over the edges");
            }
            Some(ch)
        }
    };

    Ok((graph, reverse, ch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::link::RouteOp;

    /// A graph exercising every serialized feature: adjust biases
    /// (raw-cost sidecar), deleted nodes/links, private shadowing,
    /// networks, domains, case folding, and multi-byte names.
    fn rich_graph(ignore_case: bool) -> FrozenGraph {
        let mut g = Graph::with_ignore_case(ignore_case);
        g.begin_file("one");
        let a = g.node("unc");
        let b = g.node("Duke");
        let c = g.node("phs");
        let d = g.node("müñchen"); // multi-byte UTF-8 name
        g.declare_link(a, b, 500, RouteOp::UUCP);
        g.declare_link(b, c, 300, RouteOp::ARPA);
        g.declare_link(c, d, 100, RouteOp::UUCP);
        g.adjust_node(b, 42);
        let net = g.node("NETX");
        g.declare_network(net, &[(a, 50), (c, 75)], RouteOp::UUCP);
        let dom = g.node(".edu");
        g.declare_link(a, dom, 95, RouteOp::UUCP);
        let dead = g.node("gone");
        g.declare_link(a, dead, 10, RouteOp::UUCP);
        g.delete_node(dead);
        g.begin_file("two");
        g.declare_private("unc");
        g.declare_private("wiretap");
        g.freeze()
    }

    fn retamp(mut bytes: Vec<u8>) -> Vec<u8> {
        // Recompute the checksum after deliberate tampering, so the
        // structural validators (not the checksum) are what reject
        // the file.
        let sum = checksum(&bytes);
        bytes[CHECKSUM_RANGE].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn round_trip_is_equal() {
        for ignore_case in [false, true] {
            let frozen = rich_graph(ignore_case);
            let loaded = from_bytes(&to_bytes(&frozen)).unwrap();
            // Derived PartialEq covers every array, the raw-cost
            // sidecar, and the rebuilt name index.
            assert_eq!(loaded, frozen);
        }
    }

    #[test]
    fn round_trip_through_disk() {
        let frozen = rich_graph(true);
        let path = std::env::temp_dir().join(format!("pagf-disk-{}.pagf", std::process::id()));
        write_snapshot(&frozen, &path).unwrap();
        // The atomic-write temporary must not linger.
        let tmp = path.with_file_name(format!("pagf-disk-{0}.pagf.{0}.tmp", std::process::id()));
        assert!(!tmp.exists(), "temporary file renamed away");
        let loaded = read_snapshot(&path).unwrap();
        assert_eq!(loaded, frozen);
        // Spot checks through the public API.
        assert_eq!(loaded.id_of("DUKE"), frozen.id_of("duke"));
        assert_eq!(
            loaded.name_of_id_round_trip(),
            frozen.name_of_id_round_trip()
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let frozen = Graph::new().freeze();
        let loaded = from_bytes(&to_bytes(&frozen)).unwrap();
        assert_eq!(loaded, frozen);
        assert_eq!(loaded.node_count(), 0);
        assert_eq!(loaded.edge_count(), 0);
    }

    #[test]
    fn raw_costs_survive() {
        let frozen = rich_graph(false);
        let loaded = from_bytes(&to_bytes(&frozen)).unwrap();
        let duke = loaded.id_of("Duke").unwrap();
        let e = loaded.out_edges(duke).next().unwrap();
        assert_eq!(loaded.edge_cost(e), 342, "bias folded in");
        assert_eq!(loaded.edge_raw_cost(e), 300, "sidecar preserved");
    }

    #[test]
    fn rejects_bad_magic_and_short_files() {
        assert!(matches!(from_bytes(b""), Err(SnapshotError::Corrupt(_))));
        assert!(matches!(
            from_bytes(b"PAGF1\n"),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut bytes = to_bytes(&rich_graph(false));
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(SnapshotError::Corrupt(_))));
        // A PADB1 file is not a PAGF1 file.
        assert!(matches!(
            from_bytes(b"PADB1\n0\n"),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_every_truncation() {
        let bytes = to_bytes(&rich_graph(true));
        for cut in 1..bytes.len() {
            match from_bytes(&bytes[..cut]) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("cut to {cut} bytes: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_single_bit_flips() {
        // The checksum (or a structural check in front of it) must
        // catch any single flipped bit. Walk a sample of positions.
        let bytes = to_bytes(&rich_graph(false));
        for pos in (0..bytes.len()).step_by(7) {
            for bit in [0, 3, 7] {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                match from_bytes(&bad) {
                    Err(SnapshotError::Corrupt(_)) => {}
                    Ok(_) => panic!("flip at byte {pos} bit {bit} accepted"),
                    Err(e) => panic!("flip at byte {pos} bit {bit}: {e:?}"),
                }
            }
        }
    }

    #[test]
    fn rejects_absurd_counts_without_allocating() {
        // node count u32::MAX would ask for tens of gigabytes if the
        // reader allocated before validating.
        let mut bytes = to_bytes(&Graph::new().freeze());
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes(&retamp(bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut bytes = to_bytes(&Graph::new().freeze());
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes(&retamp(bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&rich_graph(false));
        bytes.extend_from_slice(b"extra");
        assert!(matches!(
            from_bytes(&retamp(bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_structural_lies_behind_a_valid_checksum() {
        let good = to_bytes(&rich_graph(false));
        let n = u32::from_le_bytes(good[8..12].try_into().unwrap()) as usize;
        let m = u32::from_le_bytes(good[12..16].try_into().unwrap()) as usize;
        assert!(n > 2 && m > 2, "test graph is non-trivial");

        // Name offsets swapped out of order.
        let mut bad = good.clone();
        let (a, b) = (HEADER_LEN, HEADER_LEN + 4);
        for i in 0..4 {
            bad.swap(a + i, b + i);
        }
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // ignore_case byte outside 0/1.
        let mut bad = good.clone();
        bad[6] = 2;
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // Reserved bytes must stay zero.
        let mut bad = good.clone();
        bad[7] = 9;
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // An edge targeting a node past the pool. The edge section
        // starts after name_off, blob, flags, adjust and row_start.
        let name_len = u64::from_le_bytes(good[16..24].try_into().unwrap()) as usize;
        let edges_at = HEADER_LEN + (n + 1) * 4 + name_len + n * 2 + n * 8 + (n + 1) * 4;
        let mut bad = good.clone();
        bad[edges_at..edges_at + 4].copy_from_slice(&(n as u32).to_le_bytes());
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // Unknown link-flag bits on the same edge.
        let mut bad = good.clone();
        bad[edges_at + 6..edges_at + 8].copy_from_slice(&0x8000u16.to_le_bytes());
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // Non-ASCII routing operator.
        let mut bad = good.clone();
        bad[edges_at + 4] = 0xC3;
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // Operator side byte outside 0/1.
        let mut bad = good;
        bad[edges_at + 5] = 7;
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn reverse_section_round_trips() {
        for ignore_case in [false, true] {
            let frozen = rich_graph(ignore_case);
            let rev = frozen.reverse();
            let bytes = to_bytes_full(&frozen, Some(&rev));
            let (loaded, loaded_rev) = from_bytes_full(&bytes).unwrap();
            assert_eq!(loaded, frozen);
            assert_eq!(loaded_rev.as_ref(), Some(&rev));
            // The plain reader accepts the extended image too, just
            // without the transpose.
            assert_eq!(from_bytes(&bytes).unwrap(), frozen);
        }
    }

    #[test]
    fn reverse_section_round_trips_through_disk() {
        let frozen = rich_graph(true);
        let rev = frozen.reverse();
        let path = std::env::temp_dir().join(format!("pagf-rev-{}.pagf", std::process::id()));
        write_snapshot_full(&frozen, Some(&rev), &path).unwrap();
        let (loaded, loaded_rev) = read_snapshot_full(&path).unwrap();
        assert_eq!(loaded, frozen);
        assert_eq!(loaded_rev, Some(rev));
        // And the legacy reader still opens the same file.
        assert_eq!(read_snapshot(&path).unwrap(), frozen);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn legacy_image_loads_with_no_reverse() {
        let frozen = rich_graph(false);
        // `to_bytes` writes section flags zero — the pre-extension
        // wire image. The full reader reports "no reverse stored".
        let (loaded, rev) = from_bytes_full(&to_bytes(&frozen)).unwrap();
        assert_eq!(loaded, frozen);
        assert!(rev.is_none(), "legacy image carries no reverse section");
        // Rebuilding on the fly still works, of course.
        assert!(loaded.reverse().validate_against(&loaded));
    }

    #[test]
    fn rejects_unknown_section_flags() {
        // A section this reader does not know about must reject, not
        // silently misparse whatever follows the sidecar.
        let mut bytes = to_bytes(&rich_graph(false));
        bytes[28..32].copy_from_slice(&0x8000_0002u32.to_le_bytes());
        match from_bytes_full(&retamp(bytes)) {
            Err(SnapshotError::Corrupt(why)) => {
                assert!(why.contains("section flags"), "got: {why}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_tampered_reverse_section() {
        let frozen = rich_graph(false);
        let rev = frozen.reverse();
        let good = to_bytes_full(&frozen, Some(&rev));
        let n = frozen.node_count();
        let m = frozen.edge_count();
        let rev_at = good.len() - ((n + 1) * 4 + m * 4 + m * 4);

        // Every u32 slot in the section, overwritten with a value
        // the transpose check must notice.
        for slot in 0..((n + 1) + m + m) {
            let at = rev_at + slot * 4;
            let mut bad = good.clone();
            let old = u32::from_le_bytes(bad[at..at + 4].try_into().unwrap());
            bad[at..at + 4].copy_from_slice(&(old ^ 1).to_le_bytes());
            match from_bytes_full(&retamp(bad)) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("tampered slot {slot}: expected Corrupt, got {other:?}"),
            }
        }

        // Claiming the section without providing it is a size lie.
        let mut bad = to_bytes(&frozen);
        bad[28..32].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            from_bytes_full(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncated_reverse_section() {
        let frozen = rich_graph(true);
        let bytes = to_bytes_full(&frozen, Some(&frozen.reverse()));
        let plain = to_bytes(&frozen).len();
        for cut in plain..bytes.len() {
            assert!(
                matches!(
                    from_bytes_full(&bytes[..cut]),
                    Err(SnapshotError::Corrupt(_))
                ),
                "cut to {cut} bytes accepted"
            );
        }
    }

    /// A hierarchy over the plain folded edge costs — which weight
    /// metric it is does not matter to the serializer.
    fn ch_for(f: &FrozenGraph) -> ChIndex {
        let w: Vec<Cost> = f.edges.iter().map(|e| e.cost).collect();
        ChIndex::build(f, &w)
    }

    #[test]
    fn ch_section_round_trips() {
        for with_reverse in [false, true] {
            let frozen = rich_graph(with_reverse);
            let rev = frozen.reverse();
            let ch = ch_for(&frozen);
            let bytes = to_bytes_all(&frozen, with_reverse.then_some(&rev), Some(&ch));
            let (loaded, loaded_rev, loaded_ch) = from_bytes_all(&bytes).unwrap();
            assert_eq!(loaded, frozen);
            assert_eq!(loaded_rev.is_some(), with_reverse);
            assert_eq!(loaded_ch.as_ref(), Some(&ch));
            // Readers that do not want the hierarchy accept the image
            // and simply drop it.
            assert_eq!(from_bytes(&bytes).unwrap(), frozen);
            let (g2, rev2) = from_bytes_full(&bytes).unwrap();
            assert_eq!(g2, frozen);
            assert_eq!(rev2.is_some(), with_reverse);
        }
    }

    #[test]
    fn ch_section_round_trips_through_disk() {
        let frozen = rich_graph(true);
        let rev = frozen.reverse();
        let ch = ch_for(&frozen);
        let path = std::env::temp_dir().join(format!("pagf-ch-{}.pagf", std::process::id()));
        write_snapshot_all(&frozen, Some(&rev), Some(&ch), &path).unwrap();
        let (loaded, loaded_rev, loaded_ch) = read_snapshot_all(&path).unwrap();
        assert_eq!(loaded, frozen);
        assert_eq!(loaded_rev, Some(rev));
        assert_eq!(loaded_ch, Some(ch));
        // The reverse-only and legacy readers open the same file.
        assert!(read_snapshot_full(&path).unwrap().1.is_some());
        assert_eq!(read_snapshot(&path).unwrap(), frozen);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_future_section_flags_cleanly() {
        // Bit 2 is the next unassigned section bit: a file from a
        // future pathalias using it must reject with the unknown-flag
        // message — the forward-compat contract a reader compiled
        // without a section relies on.
        let mut bytes = to_bytes(&rich_graph(false));
        bytes[28..32].copy_from_slice(&4u32.to_le_bytes());
        match from_bytes_all(&retamp(bytes)) {
            Err(SnapshotError::Corrupt(why)) => {
                assert!(why.contains("section flags"), "got: {why}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_ch_section_lies() {
        let frozen = rich_graph(false);
        let ch = ch_for(&frozen);
        let good = to_bytes_all(&frozen, None, Some(&ch));
        let n = frozen.node_count();
        let base = to_bytes(&frozen).len();

        // Claiming the section without providing its bytes.
        let mut bad = to_bytes(&frozen);
        bad[28..32].copy_from_slice(&SECTION_CH.to_le_bytes());
        assert!(matches!(
            from_bytes_all(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // An inflated upward-edge count must fail the length equation
        // before anything allocates.
        let mut bad = good.clone();
        bad[base..base + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes_all(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        // Structural lies behind a valid checksum: a duplicated rank,
        // a row overrun, and an out-of-range head must all be caught
        // by the hierarchy validator, not trusted.
        let rank_at = base + 8;
        let mut bad = good.clone();
        let second = u32::from_le_bytes(bad[rank_at + 4..rank_at + 8].try_into().unwrap());
        bad[rank_at..rank_at + 4].copy_from_slice(&second.to_le_bytes());
        assert!(matches!(
            from_bytes_all(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        let up_row_at = rank_at + n * 4;
        let mut bad = good.clone();
        let last = up_row_at + n * 4;
        let old = u32::from_le_bytes(bad[last..last + 4].try_into().unwrap());
        bad[last..last + 4].copy_from_slice(&(old + 1).to_le_bytes());
        assert!(matches!(
            from_bytes_all(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));

        if ch.up_count() > 0 {
            let up_to_at = up_row_at + (n + 1) * 4;
            let mut bad = good.clone();
            bad[up_to_at..up_to_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(matches!(
                from_bytes_all(&retamp(bad)),
                Err(SnapshotError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn rejects_truncated_ch_section() {
        let frozen = rich_graph(true);
        let ch = ch_for(&frozen);
        let bytes = to_bytes_all(&frozen, Some(&frozen.reverse()), Some(&ch));
        let plain = to_bytes_full(&frozen, Some(&frozen.reverse())).len();
        for cut in plain..bytes.len() {
            assert!(
                matches!(
                    from_bytes_all(&bytes[..cut]),
                    Err(SnapshotError::Corrupt(_))
                ),
                "cut to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn rejects_non_utf8_names() {
        let mut g = Graph::new();
        g.node("abcd");
        let bytes = to_bytes(&g.freeze());
        let mut bad = bytes.clone();
        // The 4-byte name blob sits right after the two name offsets.
        let blob_at = HEADER_LEN + 2 * 4;
        bad[blob_at] = 0xFF;
        assert!(matches!(
            from_bytes(&retamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    impl FrozenGraph {
        /// Test helper: every node's name, via the public accessors.
        fn name_of_id_round_trip(&self) -> Vec<String> {
            self.node_ids()
                .map(|id| self.name(id).to_string())
                .collect()
        }
    }
}
