//! Writes a graph back out in the pathalias input language.
//!
//! Used for normalizing maps, for generating test fixtures, and to
//! property-test the parser (parse → unparse → parse must converge).

use crate::flags::{LinkFlags, NodeFlags};
use crate::graph::{Graph, NodeId};
use crate::link::{Dir, RouteOp};
use std::fmt::Write as _;

fn op_prefix(op: RouteOp) -> String {
    match op.dir {
        Dir::Right => op.ch.to_string(),
        Dir::Left => String::new(),
    }
}

fn op_suffix(op: RouteOp) -> String {
    match op.dir {
        // The default `!`/Left is left implicit, as in real maps.
        Dir::Left if op == RouteOp::UUCP => String::new(),
        Dir::Left => op.ch.to_string(),
        Dir::Right => String::new(),
    }
}

/// Renders one link target in input syntax, e.g. `duke(500)` or
/// `@mit-ai(95)`.
fn render_target(g: &Graph, to: NodeId, cost: u64, op: RouteOp) -> String {
    format!("{}{}{}({})", op_prefix(op), g.name(to), op_suffix(op), cost)
}

/// Writes the graph as pathalias input text.
///
/// Explicit links are grouped per source host; networks, aliases and the
/// various commands are emitted afterwards. Private nodes cannot be
/// faithfully round-tripped across file boundaries, so each private node
/// is emitted inside its own `file { ... }` section with a `private`
/// declaration.
///
/// # Examples
///
/// ```
/// use pathalias_graph::{Graph, RouteOp};
///
/// let mut g = Graph::new();
/// let a = g.node("unc");
/// let b = g.node("duke");
/// g.declare_link(a, b, 500, RouteOp::UUCP);
/// let text = pathalias_graph::unparse::unparse(&g);
/// assert!(text.contains("unc\tduke(500)"));
/// ```
pub fn unparse(g: &Graph) -> String {
    let mut out = String::new();
    // Nodes that appear anywhere in the emitted text; isolated nodes
    // get a bare declaration at the end so no host is lost.
    let mut mentioned = vec![false; g.node_count()];

    // Deleted nodes and private nodes are handled separately.
    let is_plain = |id: NodeId| {
        let n = g.node_ref(id);
        !n.flags.intersects(NodeFlags::DELETED | NodeFlags::PRIVATE)
    };

    // Explicit links, grouped by source. Sources are emitted sorted by
    // name (so output is stable however the graph was built); each
    // source's targets keep declaration order (the adjacency list is
    // newest-first, so reverse it).
    let mut sorted_ids: Vec<NodeId> = g.node_ids().filter(|&id| is_plain(id)).collect();
    sorted_ids.sort_by(|&a, &b| g.name(a).cmp(g.name(b)));
    for &id in &sorted_ids {
        let targets: Vec<String> = {
            let mut v: Vec<String> = g
                .links_from(id)
                .filter(|(_, l)| {
                    l.flags.is_explicit() && !l.flags.contains(LinkFlags::DELETED) && is_plain(l.to)
                })
                .map(|(_, l)| render_target(g, l.to, l.cost, l.op))
                .collect();
            v.reverse();
            v
        };
        if !targets.is_empty() {
            mentioned[id.index()] = true;
            for (_, l) in g.links_from(id) {
                if l.flags.is_explicit() && !l.flags.contains(LinkFlags::DELETED) {
                    mentioned[l.to.index()] = true;
                }
            }
            let _ = writeln!(out, "{}\t{}", g.name(id), targets.join(", "));
        }
    }

    // Networks: net = op{members}(cost). Entry costs may differ per
    // member after merges; emit one declaration per distinct cost/op,
    // nets sorted by name.
    for &id in &sorted_ids {
        let node = g.node_ref(id);
        if !node.is_net() {
            continue;
        }
        let mut groups: Vec<((u64, RouteOp), Vec<String>)> = Vec::new();
        let mut members: Vec<NodeId> = g
            .links_from(id)
            .filter(|(_, l)| l.flags.contains(LinkFlags::NET_OUT) && is_plain(l.to))
            .map(|(_, l)| l.to)
            .collect();
        members.reverse();
        for m in members {
            // Find the paired entry edge for cost and operator.
            let Some((_, entry)) = g
                .links_from(m)
                .find(|(_, l)| l.to == id && l.flags.contains(LinkFlags::NET_IN))
            else {
                continue;
            };
            let key = (entry.cost, entry.op);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(g.name(m).to_string()),
                None => groups.push((key, vec![g.name(m).to_string()])),
            }
        }
        for ((cost, op), names) in groups {
            mentioned[id.index()] = true;
            let _ = writeln!(
                out,
                "{} = {}{{{}}}({})",
                g.name(id),
                op_prefix(op),
                names.join(", "),
                cost
            );
            let _ = op_suffix(op); // Left-ops inside nets render as default.
        }
        for (_, l) in g.links_from(id) {
            if l.flags.contains(LinkFlags::NET_OUT) {
                mentioned[l.to.index()] = true;
            }
        }
    }

    // Aliases: emit each unordered pair once, sorted by name pair.
    let mut alias_lines: Vec<String> = Vec::new();
    for &id in &sorted_ids {
        for (_, l) in g.links_from(id) {
            if l.flags.contains(LinkFlags::ALIAS) && is_plain(l.to) {
                mentioned[id.index()] = true;
                mentioned[l.to.index()] = true;
                let (a, b) = (g.name(id), g.name(l.to));
                if a < b {
                    alias_lines.push(format!("{a} = {b}"));
                }
            }
        }
    }
    alias_lines.sort();
    alias_lines.dedup();
    for line in alias_lines {
        let _ = writeln!(out, "{line}");
    }

    // Commands.
    let mut dead_hosts = Vec::new();
    let mut gated = Vec::new();
    let mut adjusts = Vec::new();
    for &id in &sorted_ids {
        let node = g.node_ref(id);
        if node.flags.contains(NodeFlags::DEAD) {
            mentioned[id.index()] = true;
            dead_hosts.push(g.name(id).to_string());
        }
        if node.flags.contains(NodeFlags::GATED) {
            mentioned[id.index()] = true;
            gated.push(g.name(id).to_string());
        }
        if node.flags.contains(NodeFlags::ADJUSTED) && node.adjust != 0 {
            mentioned[id.index()] = true;
            adjusts.push(format!("{}({})", g.name(id), node.adjust));
        }
    }
    if !dead_hosts.is_empty() {
        let _ = writeln!(out, "dead {{{}}}", dead_hosts.join(", "));
    }
    if !gated.is_empty() {
        let _ = writeln!(out, "gated {{{}}}", gated.join(", "));
    }
    if !adjusts.is_empty() {
        let _ = writeln!(out, "adjust {{{}}}", adjusts.join(", "));
    }

    // Dead links and gateway links.
    let mut dead_links = Vec::new();
    let mut gateways = Vec::new();
    for &id in &sorted_ids {
        for (_, l) in g.links_from(id) {
            if !is_plain(l.to) || l.flags.contains(LinkFlags::DELETED) {
                continue;
            }
            if l.flags.contains(LinkFlags::DEAD) {
                dead_links.push(format!("{}!{}", g.name(id), g.name(l.to)));
            }
            if l.flags.contains(LinkFlags::GATEWAY) {
                gateways.push(format!("{}!{}", g.name(l.to), g.name(id)));
            }
        }
    }
    if !dead_links.is_empty() {
        dead_links.sort();
        let _ = writeln!(out, "dead {{{}}}", dead_links.join(", "));
    }
    if !gateways.is_empty() {
        gateways.sort();
        gateways.dedup();
        let _ = writeln!(out, "gateway {{{}}}", gateways.join(", "));
    }

    // Private hosts: one file section each, re-creating their links.
    // Sections are numbered sequentially so a re-parse reproduces the
    // same text.
    let mut section = 0usize;
    for (id, node) in g.iter_nodes() {
        if !node.flags.contains(NodeFlags::PRIVATE) || node.flags.contains(NodeFlags::DELETED) {
            continue;
        }
        let _ = writeln!(out, "file {{private-{section}}}");
        section += 1;
        let _ = writeln!(out, "private {{{}}}", g.name(id));
        let targets: Vec<String> = {
            let mut v: Vec<String> = g
                .links_from(id)
                .filter(|(_, l)| l.flags.is_explicit() && !l.flags.contains(LinkFlags::DELETED))
                .map(|(_, l)| render_target(g, l.to, l.cost, l.op))
                .collect();
            v.reverse();
            v
        };
        if !targets.is_empty() {
            let _ = writeln!(out, "{}\t{}", g.name(id), targets.join(", "));
        }
    }

    // Bare declarations for plain hosts that never appeared.
    let mut bare: Vec<&str> = sorted_ids
        .iter()
        .filter(|id| !mentioned[id.index()])
        .map(|&id| g.name(id))
        .collect();
    bare.sort();
    for name in bare {
        let _ = writeln!(out, "{name}");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn simple_links() {
        let mut g = Graph::new();
        let unc = g.node("unc");
        let duke = g.node("duke");
        let phs = g.node("phs");
        g.declare_link(unc, duke, 500, RouteOp::UUCP);
        g.declare_link(unc, phs, 2000, RouteOp::UUCP);
        let text = unparse(&g);
        assert!(text.contains("unc\tduke(500), phs(2000)"), "{text}");
    }

    #[test]
    fn arpa_style_prefix() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.declare_link(a, b, 10, RouteOp::ARPA);
        assert!(unparse(&g).contains("a\t@b(10)"));
    }

    #[test]
    fn networks_and_aliases() {
        let mut g = Graph::new();
        let net = g.node("ARPA");
        let m1 = g.node("mit-ai");
        let m2 = g.node("ucbvax");
        g.declare_network(net, &[(m1, 95), (m2, 95)], RouteOp::ARPA);
        let p = g.node("princeton");
        let f = g.node("fun");
        g.declare_alias(p, f);
        let text = unparse(&g);
        assert!(
            text.contains("ARPA = @{mit-ai, ucbvax}(95)"),
            "network line missing in: {text}"
        );
        assert!(text.contains("fun = princeton"), "{text}");
    }

    #[test]
    fn commands_roundtrip_shapes() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let net = g.node("CS");
        g.declare_link(a, b, 10, RouteOp::UUCP);
        g.declare_link(a, net, 10, RouteOp::UUCP);
        g.mark_gated(net);
        g.declare_gateway(net, a);
        g.mark_dead(b);
        g.mark_dead_link(a, b);
        g.adjust_node(a, 250);
        let text = unparse(&g);
        assert!(text.contains("dead {b}"), "{text}");
        assert!(text.contains("gated {CS}"), "{text}");
        assert!(text.contains("adjust {a(250)}"), "{text}");
        assert!(text.contains("dead {a!b}"), "{text}");
        assert!(text.contains("gateway {CS!a}"), "{text}");
    }

    #[test]
    fn private_sections() {
        let mut g = Graph::new();
        g.begin_file("f1");
        let pb = g.declare_private("bilbo");
        let w = g.node("wiretap");
        g.declare_link(pb, w, 10, RouteOp::UUCP);
        let text = unparse(&g);
        assert!(text.contains("private {bilbo}"), "{text}");
        assert!(text.contains("bilbo\twiretap(10)"), "{text}");
    }
}
