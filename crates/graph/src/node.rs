//! Nodes: hosts, networks and domains.

use crate::flags::NodeFlags;
use crate::graph::{FileId, LinkId};
use pathalias_arena::Span;

/// A vertex in the connectivity graph: a host, a network placeholder, or
/// a domain.
///
/// Mirrors the paper's `node` struct — "a structure consisting mostly of
/// pointers and flags", with a pointer to a singly-linked list of
/// adjacent hosts.
#[derive(Debug, Clone)]
pub struct Node {
    /// Handle to the node's name in the graph's string arena.
    pub name: Span,
    /// Flags.
    pub flags: NodeFlags,
    /// Head of the adjacency list.
    pub first_link: Option<LinkId>,
    /// File in which the node was first mentioned (private scoping and
    /// diagnostics).
    pub file: FileId,
    /// Cost bias from an `adjust` declaration, applied to every path
    /// that *transits* this node (edges leaving it). May be negative;
    /// effective link costs clamp at zero.
    pub adjust: i64,
}

impl Node {
    /// Whether the node is a network placeholder (including domains).
    pub fn is_net(&self) -> bool {
        self.flags.intersects(NodeFlags::NET | NodeFlags::DOMAIN)
    }

    /// Whether the node is a domain.
    pub fn is_domain(&self) -> bool {
        self.flags.contains(NodeFlags::DOMAIN)
    }

    /// Whether entering this node requires a gateway. "Because hosts
    /// with domain addresses are by definition ARPANET hosts, domains
    /// and subdomains are assumed to require gateways."
    pub fn is_gated(&self) -> bool {
        self.flags.intersects(NodeFlags::DOMAIN | NodeFlags::GATED)
    }

    /// Whether the mapping phase should consider this node at all.
    pub fn is_mappable(&self) -> bool {
        !self.flags.contains(NodeFlags::DELETED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> Node {
        Node {
            name: pathalias_arena::Bump::new().push_str(""),
            flags: NodeFlags::empty(),
            first_link: None,
            file: FileId::default(),
            adjust: 0,
        }
    }

    #[test]
    fn host_predicates() {
        let n = blank();
        assert!(!n.is_net());
        assert!(!n.is_domain());
        assert!(!n.is_gated());
        assert!(n.is_mappable());
    }

    #[test]
    fn domain_is_gated_net() {
        let mut n = blank();
        n.flags.insert(NodeFlags::DOMAIN);
        assert!(n.is_net());
        assert!(n.is_domain());
        assert!(n.is_gated());
    }

    #[test]
    fn gated_network() {
        let mut n = blank();
        n.flags.insert(NodeFlags::NET | NodeFlags::GATED);
        assert!(n.is_net());
        assert!(!n.is_domain());
        assert!(n.is_gated());
    }

    #[test]
    fn deleted_not_mappable() {
        let mut n = blank();
        n.flags.insert(NodeFlags::DELETED);
        assert!(!n.is_mappable());
    }
}
