//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the bench harness uses — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! [`BenchmarkId`], [`Throughput`] — with a simple fixed-budget
//! measurement loop instead of criterion's statistics engine. Each
//! benchmark warms up briefly, then runs timed batches for a small
//! wall-clock budget and reports the best mean nanoseconds per
//! iteration (the classic "fastest observed batch" estimator, which is
//! robust to scheduler noise).
//!
//! Output is one line per benchmark:
//!
//! ```text
//! bench   hashing/insert/inverse          523041 ns/iter   (#iters 96)
//! ```
//!
//! Set `CRITERION_QUICK=1` to shrink the budget (used by CI smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
fn budget() -> Duration {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(300)
    }
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Accepted by the `bench_function` family: a plain string or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display form.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// (mean ns per iter, iters measured) for the best batch.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `f`, storing the best observed mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also used to size the batches.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let budget = budget();
        let batch = (budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut best = f64::INFINITY;
        let mut iters_total = 0u64;
        let started = Instant::now();
        while started.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let mean = t.elapsed().as_nanos() as f64 / batch as f64;
            if mean < best {
                best = mean;
            }
            iters_total += batch;
        }
        self.result = Some((best, iters_total));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion API compatibility; the stand-in's budget is fixed, so
    /// the requested sample count is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, self.throughput, &mut f);
        self.criterion.ran += 1;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self.criterion.ran += 1;
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((ns, iters)) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!("   {:.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!("   {:.0} elem/s", n as f64 / ns * 1e9)
                }
                None => String::new(),
            };
            println!("bench   {label:<44} {ns:>12.0} ns/iter   (#iters {iters}){extra}");
        }
        None => println!("bench   {label:<44} (no measurement)"),
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_text(), None, &mut f);
        self.ran += 1;
        self
    }
}

/// Declares a group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
