//! Generation from a regex subset: literals, escapes, character
//! classes with ranges, `{m,n}` / `{n}` repetition, and `\PC` (any
//! non-control Unicode scalar). This covers every pattern the
//! workspace's property tests use; anything else is a panic at compile
//! time so unsupported syntax fails loudly, not silently.

use crate::test_runner::TestRng;

/// One generatable unit of the pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Lit(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// `\PC`: any scalar outside the control category.
    NonControl,
}

/// An atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Term {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    terms: Vec<Term>,
}

impl Pattern {
    /// Compiles `pattern`, panicking on syntax outside the subset.
    pub fn compile(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut terms = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    Atom::Class(class)
                }
                '\\' => {
                    let (atom, next) = parse_escape(&chars, i + 1, pattern);
                    i = next;
                    atom
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$'),
                        "unsupported regex syntax `{c}` in `{pattern}`"
                    );
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let (lo, hi, next) = parse_counts(&chars, i + 1, pattern);
                i = next;
                (lo, hi)
            } else {
                (1, 1)
            };
            terms.push(Term { atom, min, max });
        }
        Pattern { terms }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for term in &self.terms {
            let n = rng.between(term.min as u64, term.max as u64);
            for _ in 0..n {
                out.push(sample_atom(&term.atom, rng));
            }
        }
        out
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    // Skip the surrogate gap if a wide range crosses it.
                    let v = lo as u32 + pick as u32;
                    return char::from_u32(v).unwrap_or('?');
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
        Atom::NonControl => loop {
            // Mostly printable ASCII, occasionally wider scalars, never
            // control characters — matching proptest's \PC intent.
            let c = if rng.below(20) > 0 {
                char::from_u32(rng.between(0x20, 0x7e) as u32).unwrap()
            } else {
                match char::from_u32(rng.between(0xa0, 0x2fff) as u32) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if !c.is_control() {
                return c;
            }
        },
    }
}

/// Parses the inside of `[...]` starting at `i`; returns the ranges and
/// the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    loop {
        assert!(i < chars.len(), "unterminated class in `{pattern}`");
        if chars[i] == ']' {
            assert!(!ranges.is_empty(), "empty class in `{pattern}`");
            return (ranges, i + 1);
        }
        let lo = if chars[i] == '\\' {
            let (atom, next) = parse_escape(chars, i + 1, pattern);
            i = next;
            match atom {
                Atom::Lit(c) => c,
                _ => panic!("unsupported class escape in `{pattern}`"),
            }
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // `lo-hi` is a range unless the `-` is last in the class.
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            i += 1;
            let hi = if chars[i] == '\\' {
                let (atom, next) = parse_escape(chars, i + 1, pattern);
                i = next;
                match atom {
                    Atom::Lit(c) => c,
                    _ => panic!("unsupported class escape in `{pattern}`"),
                }
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            assert!(lo <= hi, "inverted range {lo}-{hi} in `{pattern}`");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
}

/// Parses one escape starting after the backslash; returns the atom and
/// the next index.
fn parse_escape(chars: &[char], i: usize, pattern: &str) -> (Atom, usize) {
    assert!(i < chars.len(), "dangling backslash in `{pattern}`");
    match chars[i] {
        'n' => (Atom::Lit('\n'), i + 1),
        't' => (Atom::Lit('\t'), i + 1),
        'r' => (Atom::Lit('\r'), i + 1),
        'P' => {
            // Only the negated-control category is supported.
            assert!(
                i + 1 < chars.len() && chars[i + 1] == 'C',
                "unsupported \\P category in `{pattern}`"
            );
            (Atom::NonControl, i + 2)
        }
        c @ ('\\' | '.' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^'
        | '$' | '/') => (Atom::Lit(c), i + 1),
        other => panic!("unsupported escape \\{other} in `{pattern}`"),
    }
}

/// Parses `m,n}` or `n}` starting at `i`; returns (min, max, next).
fn parse_counts(chars: &[char], mut i: usize, pattern: &str) -> (u32, u32, usize) {
    let read_num = |i: &mut usize| -> u32 {
        let start = *i;
        while *i < chars.len() && chars[*i].is_ascii_digit() {
            *i += 1;
        }
        assert!(*i > start, "bad repetition count in `{pattern}`");
        chars[start..*i].iter().collect::<String>().parse().unwrap()
    };
    let lo = read_num(&mut i);
    let hi = if i < chars.len() && chars[i] == ',' {
        i += 1;
        read_num(&mut i)
    } else {
        lo
    };
    assert!(
        i < chars.len() && chars[i] == '}',
        "unterminated repetition in `{pattern}`"
    );
    assert!(lo <= hi, "inverted repetition in `{pattern}`");
    (lo, hi, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen(pattern: &str, case: u32) -> String {
        Pattern::compile(pattern).generate(&mut TestRng::for_case("regex_gen", case))
    }

    #[test]
    fn class_range_and_counts() {
        for case in 0..200 {
            let s = gen("[a-e]{1,3}", case);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range() {
        for case in 0..200 {
            let s = gen("[ -~]{0,40}", case);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn concatenation_and_trailing_hyphen() {
        for case in 0..200 {
            let s = gen("[a-z][a-z0-9.-]{0,10}", case);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));
        }
    }

    #[test]
    fn escapes_in_classes() {
        for case in 0..100 {
            let s = gen("[ \\t\\na-z0-9.!@:%,(){}=+*/#_-]{0,200}", case);
            assert!(s.chars().all(|c| c == ' '
                || c == '\t'
                || c == '\n'
                || c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || ".!@:%,(){}=+*/#_-".contains(c)));
        }
    }

    #[test]
    fn non_control() {
        for case in 0..100 {
            let s = gen("\\PC{0,300}", case);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
