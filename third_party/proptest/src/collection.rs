//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let n = rng.between(self.size.start as u64, self.size.end as u64 - 1) as usize;
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with length in `size`
/// (half-open, as in `proptest::collection::vec(s, 0..60)`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
