//! The [`Strategy`] trait and its combinators.

use crate::regex_gen::Pattern;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A boxed strategy, for heterogeneous unions.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Generates random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<B, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `f`, retrying with fresh draws.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy for storage in a [`Union`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
    type Value = B;
    fn gen_value(&self, rng: &mut TestRng) -> B {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 draws in a row: {}", self.whence);
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `arms`; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// String literals are regex-subset strategies producing [`String`]s.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        // Compiling per draw is cheap relative to the tests' bodies and
        // keeps this impl stateless.
        Pattern::compile(self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`, as in proptest.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
