//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators, regex-subset string generation,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*` macros this
//! workspace's property tests use. Differences from real proptest:
//!
//! * **No shrinking.** A failing case panics with the generated values
//!   in scope; the deterministic per-(test, case) seeding makes every
//!   failure reproducible, which is what matters for CI.
//! * **Regex strategies** support the subset the tests use: literals,
//!   escapes, character classes with ranges, `{m,n}` repetition, and
//!   `\PC` (any non-control scalar).
//!
//! See `third_party/README.md` for the rationale.

#![forbid(unsafe_code)]

pub mod collection;
pub mod regex_gen;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each function body runs once per generated
/// case; assertion failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $pat =
                    $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Weighted or unweighted choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
