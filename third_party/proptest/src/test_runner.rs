//! Deterministic per-case random source and run configuration.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A config running `default_cases` cases unless the
    /// `PROPTEST_CASES` environment variable overrides it — how the
    /// fuzz-style harnesses let the dedicated CI job crank coverage
    /// far past what a local `cargo test` pays for.
    pub fn with_cases_env(default_cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default_cases);
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies. Seeded from the test name
/// and case number, so every case is reproducible without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The rng for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.random_range(0..n)
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}
