//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random`,
//! `random_range` and `random_bool`. The generator is xoshiro256++
//! seeded via SplitMix64 — deterministic across platforms, which is all
//! the map generator needs (it never claimed cryptographic strength).

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value methods, mirroring rand 0.9.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..7usize);
            assert!((3..7).contains(&v));
            let s = rng.random_range(-200..400i64);
            assert!((-200..400).contains(&s));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
    }
}
