//! # pathalias
//!
//! A Rust reproduction of **pathalias** — Peter Honeyman and Steven M.
//! Bellovin, *"PATHALIAS or The Care and Feeding of Relative
//! Addresses"*, USENIX 1986 — the tool that computed electronic-mail
//! routes for the UUCP/USENET world.
//!
//! > "Pathalias computes electronic mail routes in environments that mix
//! > explicit and implicit routing, as well as syntax styles. ...
//! > Pathalias is guided by a simple philosophy: get the mail through,
//! > reliably and efficiently."
//!
//! This crate is a facade over the component crates:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`pathalias_core`] (re-exported as [`core`]) | the parse → map → print pipeline, options, diagnostics |
//! | [`pathalias_mailer`] (re-exported as [`mailer`]) | route database, address parsing/rewriting, headers |
//! | [`pathalias_mapgen`] (re-exported as [`mapgen`]) | synthetic 1986-scale map generation |
//! | [`pathalias_server`] (re-exported as [`server`]) | the concurrent route-query daemon with hot reload |
//!
//! The most common entry points are also re-exported at the top level.
//! One worth knowing by name: [`Resolver`] is the single lookup API
//! every route backend implements — the in-memory [`RouteDb`], the
//! shared [`SharedRouteDb`] handle, the page-cache-backed
//! [`mailer::disk::MappedDb`] over a PADB1 file, and the server's
//! cached snapshot ([`server::index::Cached`]) all answer
//! `resolve(host, user)` identically.
//!
//! ```
//! use pathalias::{Resolver, RouteDb, SharedRouteDb};
//!
//! let db = RouteDb::from_output("seismo\tseismo!%s\n.edu\tseismo!%s\n").unwrap();
//! // Any backend, same call, same answer:
//! let shared = SharedRouteDb::new(db.clone());
//! for backend in [&db as &dyn Resolver, &shared as &dyn Resolver] {
//!     let hit = backend.resolve("caip.rutgers.edu", "pleasant").unwrap();
//!     assert_eq!(hit.route, "seismo!caip.rutgers.edu!pleasant");
//! }
//! ```
//!
//! # Quick start
//!
//! ```
//! use pathalias::{Pathalias, RouteDb};
//!
//! // A fragment of the 1981 UUCP map, straight from the paper.
//! let map = "\
//! unc\tduke(HOURLY), phs(HOURLY*4)
//! duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
//! phs\tunc(HOURLY*4), duke(HOURLY)
//! research\tduke(DEMAND), ucbvax(DEMAND)
//! ucbvax\tresearch(DAILY)
//! ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
//! ";
//!
//! let mut pa = Pathalias::new();
//! pa.options_mut().local = Some("unc".into());
//! pa.parse_str("paper-map", map).unwrap();
//! let out = pa.run().unwrap();
//!
//! // The route database a mailer would load:
//! let db = RouteDb::from_output(&out.rendered).unwrap();
//! assert_eq!(
//!     db.route_to("mit-ai", "minsky").unwrap(),
//!     "duke!research!ucbvax!minsky@mit-ai"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pathalias_core as core;
pub use pathalias_mailer as mailer;
pub use pathalias_mapgen as mapgen;
pub use pathalias_server as server;

pub use pathalias_core::{
    parse, parse_files, symbol_cost, symbol_table, CostModel, Error, Graph, MapOptions, Options,
    Output, Pathalias, Route, RouteTable, ShortestPathTree, Sort, DEFAULT_COST, INF,
};
pub use pathalias_mailer::{
    Address, BoxedResolver, HeaderRewriter, Message, Policy, Resolution, ResolveError, ResolvedVia,
    Resolver, RewriteError, Rewriter, RouteDb, SharedRouteDb, SyntaxStyle,
};
pub use pathalias_mapgen::{generate, GeneratedMap, MapSpec};
pub use pathalias_server::{Client, ClientError, MapSource, Server, ServerConfig};
