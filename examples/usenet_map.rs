//! Map the whole (synthetic) 1986 USENET.
//!
//! The paper's production workload: "USENET maps contain over 5,700
//! nodes and 20,000 links, while ARPANET, CSNET, and BITNET add another
//! 2,800 nodes and 8,000 links." This example generates a synthetic
//! universe at that scale, runs the full pipeline from a hub, and
//! reports what the authors watched: phase timings, heap traffic,
//! penalty counts, back-link inventions, and unreachable hosts.
//!
//! Run with: `cargo run --release --example usenet_map`

use pathalias::core::Options;
use pathalias::{generate, MapSpec, Pathalias};

fn main() {
    let spec = MapSpec::usenet_1986(1986);
    println!(
        "# generating a synthetic USENET: {} uucp hosts + {} network hosts...",
        spec.uucp_hosts, spec.net_hosts
    );
    let map = generate(&spec);
    println!(
        "# generated {} files, {} bytes, {} links, {} networks, {} domain nodes",
        map.files.len(),
        map.byte_size(),
        map.stats.links,
        map.stats.networks,
        map.stats.domains
    );

    let mut pa = Pathalias::with_options(Options {
        local: Some(map.home.clone()),
        with_costs: true,
        ..Options::default()
    });
    for (name, text) in &map.files {
        pa.parse_str(name, text).expect("generated maps parse");
    }
    let out = pa.run().expect("mapping succeeds");

    let g = pa.graph();
    let s = out.tree.stats;
    println!("\n# pipeline report (mapping from {}):", map.home);
    println!("nodes: {}, links: {}", g.node_count(), g.link_count());
    println!(
        "mapped: {} ({} visible routes)",
        s.mapped,
        out.routes.visible().count()
    );
    println!(
        "heap: {} pushes, {} pops ({} stale) over {} relaxations",
        s.pushes, s.pops, s.stale_pops, s.relaxations
    );
    println!(
        "penalties applied: {} gateway, {} domain-relay, {} mixed-syntax",
        s.gate_penalties, s.relay_penalties, s.mixed_penalties
    );
    println!(
        "back links: {} invented over {} extra rounds",
        s.invented_links, s.backlink_rounds
    );
    println!(
        "unreachable after back links: {} hosts",
        out.unreachable.len()
    );
    println!(
        "timings: parse {:?}, map {:?}, print {:?}",
        out.timings.parse, out.timings.map, out.timings.print
    );
    println!("warnings from the map data: {}", out.warnings.len());

    // Show the near end of the route list: the expensive tail is where
    // back links and penalties live.
    let mut routes: Vec<_> = out.routes.visible().collect();
    routes.sort_by_key(|r| r.cost);
    println!("\n# five cheapest routes:");
    for r in routes.iter().take(5) {
        println!("{}\t{}\t{}", r.cost, r.name, r.route);
    }
    println!("\n# five most expensive (penalized / invented) routes:");
    for r in routes.iter().rev().take(5) {
        println!("{}\t{}\t{}", r.cost, r.name, r.route);
    }
}
