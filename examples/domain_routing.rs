//! Domains, gateways, and the second-best experiment.
//!
//! Reproduces the two domain figures from the paper (the
//! `seismo!caip.rutgers.edu!%s` synthesis and the `.rutgers.edu`
//! masquerade) and the PROBLEMS-section motown example, showing how the
//! heuristics change the chosen route and what the "second-best"
//! modified algorithm keeps.
//!
//! Run with: `cargo run --example domain_routing`

use pathalias::core::{compute_routes, map, map_dual, render, CostModel, MapOptions, Sort};
use pathalias::parse;

fn main() {
    // Figure 1: the domain tree behind seismo.
    let tree_map = "\
u seismo(DEMAND)
seismo .edu(DEDICATED)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
";
    let g = parse(tree_map).unwrap();
    let u = g.try_node("u").unwrap();
    let tree = map(&g, u, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    println!("# domain tree figure — routes from u:");
    print!(
        "{}",
        render(
            &table,
            &pathalias::core::PrintOptions {
                with_costs: false,
                sort: Sort::ByName,
                include_hidden: true,
            },
        )
    );

    // Figure 2: a subdomain masquerading as a top-level domain.
    let masquerade = "\
u caip(DEMAND)
.rutgers.edu = {caip(0), blue(0)}
";
    let g = parse(masquerade).unwrap();
    let u = g.try_node("u").unwrap();
    let tree = map(&g, u, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    println!("\n# masquerade figure — caip gateways .rutgers.edu only:");
    for name in ["caip", "blue.rutgers.edu", ".rutgers.edu"] {
        let r = table.find(name).expect(name);
        println!("{}\t{}", r.name, r.route);
    }

    // The PROBLEMS figure: motown via the domain (425 + penalty) or via
    // topaz (500).
    let motown_map = "\
princeton caip(200), topaz(300)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
topaz motown(200)
";
    println!("\n# PROBLEMS figure — motown from princeton:");

    // With the paper's heuristics, the relay penalty prices the left
    // branch out: the right branch (topaz, 500) wins.
    let g = parse(motown_map).unwrap();
    let princeton = g.try_node("princeton").unwrap();
    let motown = g.try_node("motown").unwrap();
    let tree = map(&g, princeton, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    let r = table.entries.iter().find(|r| r.node == motown).unwrap();
    println!("with heuristics:    cost {:>9}  {}", r.cost, r.route);

    // With heuristics off (early pathalias), the domain branch wins at
    // 425 — and "the mailer at Rutgers rejects the left branch route".
    let g = parse(motown_map).unwrap();
    let princeton = g.try_node("princeton").unwrap();
    let motown = g.try_node("motown").unwrap();
    let plain = MapOptions {
        model: CostModel::plain(),
        ..MapOptions::default()
    };
    let tree = map(&g, princeton, &plain).unwrap();
    let table = compute_routes(&tree);
    let r = table.entries.iter().find(|r| r.node == motown).unwrap();
    println!("without heuristics: cost {:>9}  {}", r.cost, r.route);

    // The modified algorithm from the PROBLEMS section: keep the
    // second-best path when the shortest goes by way of a domain.
    let g = parse(motown_map).unwrap();
    let princeton = g.try_node("princeton").unwrap();
    let motown = g.try_node("motown").unwrap();
    let mut opts = MapOptions::default();
    opts.model.relay_penalty = 0; // Pre-heuristic cost model.
    let dual = map_dual(&g, princeton, &opts).unwrap();
    println!(
        "second-best:        primary {} via domain, clean alternative {}",
        dual.primary.cost(motown).unwrap(),
        dual.second_best(motown).map(|l| l.cost).unwrap()
    );
}
