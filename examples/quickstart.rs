//! Quick start: run pathalias on the paper's 1981 map fragment.
//!
//! Reproduces the worked example from the paper's OUTPUT section,
//! printing the same seven routes it shows, then demonstrates the
//! `printf`-format-string contract by expanding one route for a user.
//!
//! Run with: `cargo run --example quickstart`

use pathalias::{Pathalias, RouteDb};

/// "Consider the following input data (a simplified portion of the map
/// from 1981)".
const PAPER_MAP: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";

fn main() {
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("unc".to_string());
    pa.options_mut().with_costs = true;

    pa.parse_str("map-1981", PAPER_MAP)
        .expect("the paper's map parses");
    let out = pa.run().expect("mapping from unc succeeds");

    println!("# routes from unc (compare with the paper's OUTPUT section):");
    print!("{}", out.rendered);

    // "A mail user or delivery agent combines this route with a user
    // name, producing a complete route."
    let db = RouteDb::from_output(&out.rendered).expect("own output loads");
    let full = db.route_to("mit-ai", "minsky").expect("mit-ai is routable");
    println!("\n# mail for minsky at mit-ai travels:");
    println!("{full}");

    // The paper's first observation about this output.
    let phs = db.route_to("phs", "user").unwrap();
    assert_eq!(phs, "duke!phs!user");
    println!("\n# note: phs is routed via duke despite the direct link");
    println!("# (500 + 300 beats the direct HOURLY*4 = 2000).");
}
