//! The route database life cycle: generate, index on disk, query, diff.
//!
//! "Output from pathalias is a simple linear file, in the UNIX
//! tradition. If desired, a separate program may be used to convert
//! this file into a format appropriate for rapid database retrieval."
//! This example plays the role of that separate program and of the map
//! administrator watching routes drift between map updates.
//!
//! Run with: `cargo run --release --example route_database`

use pathalias::core::{compute_routes, diff_routes, map, MapOptions};
use pathalias::mailer::disk::{write_db, DiskDb};
use pathalias::{parse, Pathalias, RouteDb};

fn main() {
    // Monday's map.
    let monday = "\
home hub(DEMAND), backup(DAILY)
hub seismo(DEDICATED), decvax(HOURLY)
backup decvax(EVENING)
seismo mcvax(DAILY)
";
    // Tuesday: the hub's seismo line degrades; a new host appears.
    let tuesday = "\
home hub(DEMAND), backup(DAILY)
hub seismo(WEEKLY), decvax(HOURLY)
backup decvax(EVENING), seismo(DAILY)
seismo mcvax(DAILY)
decvax newsite(HOURLY)
";

    let run = |text: &str| {
        let mut pa = Pathalias::new();
        pa.options_mut().local = Some("home".into());
        pa.options_mut().with_costs = true;
        pa.parse_str("map", text).unwrap();
        pa.run().unwrap()
    };

    let out_mon = run(monday);
    let out_tue = run(tuesday);

    // 1. Build the fast-retrieval database from Tuesday's output.
    let db = RouteDb::from_output(&out_tue.rendered).unwrap();
    let path = std::env::temp_dir().join(format!("routes-{}.padb", std::process::id()));
    write_db(&db, &path).unwrap();
    let mut disk = DiskDb::open(&path).unwrap();
    println!(
        "# wrote {} routes to {} ({} bytes)",
        disk.len(),
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    // 2. Mailer-side lookups straight off the disk index.
    for dest in ["mcvax", "newsite", "seismo"] {
        let route = disk.route_to(dest, "user").unwrap().unwrap();
        println!("route to {dest:<8} {route}");
    }

    // 3. What changed since Monday?
    println!("\n# route drift, Monday -> Tuesday:");
    for change in diff_routes(&out_mon.routes, &out_tue.routes) {
        println!("{change}");
    }

    std::fs::remove_file(path).unwrap();

    // 4. The same diff machinery catches heuristic effects: compare a
    // run with and without the domain relay restriction.
    let world = "\
home caip(DIRECT), topaz(DEMAND)
caip .rutgers.edu(DIRECT)
.rutgers.edu motown(LOCAL)
topaz motown(DIRECT)
";
    let g = parse(world).unwrap();
    let home = g.try_node("home").unwrap();
    let with = map(&g, home, &MapOptions::default()).unwrap();
    let with_routes = compute_routes(&with);

    let g2 = parse(world).unwrap();
    let home2 = g2.try_node("home").unwrap();
    let plain = MapOptions {
        model: pathalias::CostModel::plain(),
        ..MapOptions::default()
    };
    let without = map(&g2, home2, &plain).unwrap();
    let without_routes = compute_routes(&without);

    println!("\n# effect of the domain heuristics on this world:");
    for change in diff_routes(&without_routes, &with_routes) {
        println!("{change}");
    }
}
