//! The serving layer end to end: map → daemon → concurrent clients →
//! hot reload → graceful shutdown.
//!
//! The paper stops at the route file; production starts at the daemon.
//! This example runs the full arc in one process: generate a synthetic
//! map, serve it with `pathalias_server`, hammer it from several
//! client threads — batched over protocol v2, so each round trip
//! carries a whole batch of queries — then edit the map, hot-reload
//! without dropping a single in-flight query, and drain cleanly.
//!
//! Run with: `cargo run --release --example route_server`

use pathalias::server::{Client, MapSource, Server, ServerConfig};
use pathalias::{generate, MapSpec};

fn main() {
    // A synthetic 400-host map, written out as pathalias *input*.
    let spec = MapSpec::small(400, 1986);
    let map = generate(&spec);
    let dir = std::env::temp_dir();
    let map_path = dir.join(format!("route-server-example-{}.map", std::process::id()));
    std::fs::write(&map_path, map.concatenated()).unwrap();

    // Serve it straight from map input: the daemon runs the whole
    // parse → map → print pipeline itself, and RELOAD re-runs it.
    let options = pathalias::core::Options {
        local: Some(map.home.clone()),
        ..Default::default()
    };
    let source = MapSource::map_files(vec![map_path.clone()], options);
    let handle = Server::start(ServerConfig::ephemeral(source)).expect("daemon starts");
    let addr = handle.tcp_addr().unwrap();
    let (generation, entries) = handle.table_info();
    println!("daemon on {addr}: {entries} routes at generation {generation}");

    // A few concurrent clients, each on its own persistent connection.
    let hosts: Vec<String> = {
        let mut c = Client::connect(addr).unwrap();
        // Pick some known-routable names by asking the daemon itself.
        let sample = ["aaa", "aab", "aac", "aba", "baa"];
        let found: Vec<String> = sample
            .iter()
            .filter(|h| c.query(h, Some("user")).unwrap().is_some())
            .map(|h| h.to_string())
            .collect();
        c.quit().unwrap();
        if found.is_empty() {
            vec![map.home.clone()]
        } else {
            found
        }
    };
    std::thread::scope(|s| {
        for t in 0..4 {
            let hosts = &hosts;
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Protocol v2: 25 batches of 80 queries, one round
                // trip each, instead of 2,000 round trips.
                for batch in 0..25 {
                    let queries: Vec<(&str, Option<&str>)> = (0..80)
                        .map(|i| {
                            (
                                hosts[(t + batch * 80 + i) % hosts.len()].as_str(),
                                Some("postmaster"),
                            )
                        })
                        .collect();
                    let results = c.query_batch(&queries).expect("no dropped connections");
                    assert!(results.iter().all(Option::is_some), "host routes");
                }
                c.quit().unwrap();
            });
        }
    });

    let mut c = Client::connect(addr).unwrap();
    println!("after 8k queries: {}", c.stats().unwrap());

    // Hot reload: append a brand-new host to the map and swap it in.
    let mut text = std::fs::read_to_string(&map_path).unwrap();
    text.push_str(&format!(
        "{} examplehost(DAILY)\nexamplehost {}(DAILY)\n",
        map.home, map.home
    ));
    std::fs::write(&map_path, text).unwrap();
    println!("reload: {}", c.reload().unwrap());
    let route = c
        .query("examplehost", Some("honey"))
        .unwrap()
        .expect("new host routable after reload");
    println!("route to the host added by the reload: {route}");

    c.quit().unwrap();

    // Graceful shutdown from the wire: a v2 client sends SHUTDOWN, the
    // daemon stops accepting and drains in-flight connections.
    let shutdown_client = Client::connect(addr).unwrap();
    println!("shutdown: {}", shutdown_client.shutdown().unwrap());
    let drained = handle.drain(std::time::Duration::from_secs(5));
    println!("drained cleanly: {drained}");
    std::fs::remove_file(map_path).unwrap();
}
