//! The serving layer end to end: map → daemon → concurrent clients →
//! hot reload.
//!
//! The paper stops at the route file; production starts at the daemon.
//! This example runs the full arc in one process: generate a synthetic
//! map, serve it with `pathalias_server`, hammer it from several
//! client threads, then edit the map and hot-reload without dropping a
//! single in-flight query.
//!
//! Run with: `cargo run --release --example route_server`

use pathalias::server::{Client, MapSource, Server, ServerConfig};
use pathalias::{generate, MapSpec};

fn main() {
    // A synthetic 400-host map, written out as pathalias *input*.
    let spec = MapSpec::small(400, 1986);
    let map = generate(&spec);
    let dir = std::env::temp_dir();
    let map_path = dir.join(format!("route-server-example-{}.map", std::process::id()));
    std::fs::write(&map_path, map.concatenated()).unwrap();

    // Serve it straight from map input: the daemon runs the whole
    // parse → map → print pipeline itself, and RELOAD re-runs it.
    let options = pathalias::core::Options {
        local: Some(map.home.clone()),
        ..Default::default()
    };
    let source = MapSource::map_files(vec![map_path.clone()], options);
    let handle = Server::start(ServerConfig::ephemeral(source)).expect("daemon starts");
    let addr = handle.tcp_addr().unwrap();
    let (generation, entries) = handle.table_info();
    println!("daemon on {addr}: {entries} routes at generation {generation}");

    // A few concurrent clients, each on its own persistent connection.
    let hosts: Vec<String> = {
        let mut c = Client::connect(addr).unwrap();
        // Pick some known-routable names by asking the daemon itself.
        let sample = ["aaa", "aab", "aac", "aba", "baa"];
        let found: Vec<String> = sample
            .iter()
            .filter(|h| c.query(h, Some("user")).unwrap().is_some())
            .map(|h| h.to_string())
            .collect();
        c.quit().unwrap();
        if found.is_empty() {
            vec![map.home.clone()]
        } else {
            found
        }
    };
    std::thread::scope(|s| {
        for t in 0..4 {
            let hosts = &hosts;
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..2_000 {
                    let host = &hosts[(t + i) % hosts.len()];
                    c.query(host, Some("postmaster"))
                        .expect("no dropped connections")
                        .expect("host routes");
                }
                c.quit().unwrap();
            });
        }
    });

    let mut c = Client::connect(addr).unwrap();
    println!("after 8k queries: {}", c.stats().unwrap());

    // Hot reload: append a brand-new host to the map and swap it in.
    let mut text = std::fs::read_to_string(&map_path).unwrap();
    text.push_str(&format!(
        "{} examplehost(DAILY)\nexamplehost {}(DAILY)\n",
        map.home, map.home
    ));
    std::fs::write(&map_path, text).unwrap();
    println!("reload: {}", c.reload().unwrap());
    let route = c
        .query("examplehost", Some("honey"))
        .unwrap()
        .expect("new host routable after reload");
    println!("route to the host added by the reload: {route}");

    c.quit().unwrap();
    handle.shutdown();
    std::fs::remove_file(map_path).unwrap();
}
