//! Integrating pathalias with a mailer.
//!
//! Walks through the paper's INTEGRATING PATHALIAS WITH MAILERS section:
//! loading the route database, the domain-suffix lookup (both of the
//! paper's `caip.rutgers.edu!pleasant` resolution paths), first-hop vs
//! rightmost-known rewriting, loop-test preservation, and the cbosgd
//! header-abbreviation hazard from the PERSPECTIVES section.
//!
//! Run with: `cargo run --example mailer_integration`

use pathalias::{HeaderRewriter, Message, Pathalias, Policy, Rewriter, RouteDb, SyntaxStyle};

fn main() {
    // A small world seen from princeton: seismo gateways .edu.
    let map = "\
princeton seismo(DEMAND), cbosgd(EVENING)
seismo .edu(DEDICATED), mcvax(DAILY)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
";
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("princeton".to_string());
    pa.parse_str("world", map).unwrap();
    let out = pa.run().unwrap();
    println!("# route list as seen from princeton:");
    print!("{}", out.rendered);

    let db = RouteDb::from_output(&out.rendered).unwrap();

    // The paper's lookup walkthrough: "a mailer first searches the
    // route list for caip.rutgers.edu; if found, the mailer uses
    // argument pleasant ... Otherwise, a search for .rutgers.edu,
    // followed by a search for .edu, produces the route to the .edu
    // gateway. The argument here is ... caip.rutgers.edu!pleasant."
    let direct = db.route_to("caip.rutgers.edu", "pleasant").unwrap();
    println!("\n# exact entry: {direct}");

    let suffix_db = RouteDb::from_output(
        &out.rendered
            .lines()
            .filter(|l| !l.contains("caip"))
            .collect::<Vec<_>>()
            .join("\n"),
    )
    .unwrap();
    let via_gateway = suffix_db.route_to("caip.rutgers.edu", "pleasant").unwrap();
    println!("# via .edu suffix: {via_gateway}");
    assert_eq!(direct, via_gateway, "both searches produce the same route");

    // Rewriting policies.
    let first_hop = Rewriter::new(&db).policy(Policy::FirstHop);
    let rightmost = Rewriter::new(&db).policy(Policy::RightmostKnown);
    let reply_path = "cbosgd!seismo!mcvax!piet";
    println!("\n# USENET reply path: {reply_path}");
    println!(
        "first-hop routing:  {}",
        first_hop.rewrite(reply_path).unwrap()
    );
    println!(
        "rightmost-known:    {}",
        rightmost.rewrite(reply_path).unwrap()
    );

    // "Loop tests are a time-honored UUCP tradition, and an
    // overly-enthusiastic optimizer can eliminate them altogether."
    let loop_test = "seismo!princeton!seismo!loopcheck";
    println!("\n# loop test: {loop_test}");
    println!(
        "preserved:          {}",
        rightmost.rewrite(loop_test).unwrap()
    );

    // Header processing: the paper's message, received at princeton.
    let msg = Message::parse(
        "From cbosgd!mark Sun Feb 9 13:14:58 EST 1986\n\
         To: princeton!honey\n\
         Cc: seismo!mcvax!piet\n\
         Subject: pathalias\n\n\
         nice work, guys.\n",
    )
    .unwrap();
    let hw = HeaderRewriter::new(
        Rewriter::new(&db)
            .policy(Policy::FirstHop)
            .style(SyntaxStyle::Heuristic),
    );
    let (rewritten, errors) = hw.rewrite_message(&msg);
    println!("\n# message after header rewriting (body untouched):");
    print!("{}", rewritten.render());
    assert!(errors.is_empty());

    // The hazard: cbosgd's aggressive optimizer abbreviates the Cc to
    // mcvax!piet; prefixing the origin gives cbosgd!mcvax!piet, which
    // must NOT be shortened further at princeton.
    let careful = Rewriter::new(&db);
    let kept = careful.shorten("cbosgd!mcvax!piet").unwrap();
    println!("\n# cbosgd!mcvax!piet shortens to: {kept}");
    assert_eq!(kept, "cbosgd!mcvax!piet");
    println!("# (unchanged: princeton cannot assume mcvax is unique)");
}
