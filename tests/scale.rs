//! Paper-scale structural checks on the synthetic universe.

use pathalias::core::{map_readonly, parallel, stats, Graph, MapOptions};
use pathalias::{generate, MapSpec, Pathalias};

fn paper_world() -> (Pathalias, String) {
    let map = generate(&MapSpec::usenet_1986(1986));
    let mut pa = Pathalias::new();
    for (name, text) in &map.files {
        pa.parse_str(name, text).unwrap();
    }
    (pa, map.home.clone())
}

#[test]
fn structure_matches_the_paper() {
    let (pa, _) = paper_world();
    let s = stats::stats(pa.graph());
    // "over 5,700 nodes and 20,000 links ... another 2,800 nodes and
    // 8,000 links": nodes ≈ 8,500+, links in the tens of thousands,
    // and sparse (e proportional to v, not v²).
    assert!(s.nodes > 8_500, "nodes: {}", s.nodes);
    assert!(s.links > 20_000, "links: {}", s.links);
    assert!(s.sparsity < 10.0, "e/v = {}", s.sparsity);
    assert!(s.nets >= 20, "networks: {}", s.nets);
    assert!(s.domains >= 6, "domains: {}", s.domains);
    // One giant component holds nearly everything.
    assert!(
        s.largest_component as f64 >= s.nodes as f64 * 0.95,
        "largest component {} of {}",
        s.largest_component,
        s.nodes
    );
}

#[test]
fn full_pipeline_reaches_everything() {
    let (mut pa, home) = paper_world();
    pa.options_mut().local = Some(home);
    let out = pa.run().unwrap();
    assert!(out.unreachable.is_empty(), "{:?}", out.unreachable);
    let visible = out.routes.visible().count();
    assert!(visible > 8_000, "visible routes: {visible}");
    // Route strings are well-formed at scale.
    for r in out.routes.visible() {
        assert_eq!(r.route.matches("%s").count(), 1, "{}", r.route);
    }
}

#[test]
fn byte_identical_across_runs() {
    let run = || {
        let (mut pa, home) = paper_world();
        pa.options_mut().local = Some(home);
        pa.options_mut().with_costs = true;
        pa.run().unwrap().rendered
    };
    assert_eq!(run(), run(), "the pipeline is deterministic");
}

#[test]
fn parallel_multi_source_consistent_at_scale() {
    let map = generate(&MapSpec::small(800, 1986));
    let g: Graph = map.parse().unwrap();
    let sources: Vec<_> = g.node_ids().take(12).collect();
    let opts = MapOptions::default();
    let trees = parallel::map_many(&g, &sources, &opts, 4);
    for (i, tree) in trees.iter().enumerate() {
        let seq = map_readonly(&g, sources[i], &opts).unwrap();
        let tree = tree.as_ref().unwrap();
        for id in g.node_ids() {
            assert_eq!(tree.label(id), seq.label(id));
        }
    }
}
