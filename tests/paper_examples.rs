//! Byte-exact reproductions of every worked example in the paper.
//!
//! Experiment ids refer to DESIGN.md §3.

use pathalias::core::{compute_routes, map, CostModel, MapOptions};
use pathalias::{parse, symbol_cost, Pathalias};

/// E1: the OUTPUT-section example, "a simplified portion of the map
/// from 1981", run from unc.
#[test]
fn e1_unc_1981_output() {
    const INPUT: &str = "\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
";
    const EXPECTED: &str = "\
0\tunc\t%s
500\tduke\tduke!%s
800\tphs\tduke!phs!%s
3000\tresearch\tduke!research!%s
3300\tucbvax\tduke!research!ucbvax!%s
3395\tmit-ai\tduke!research!ucbvax!%s@mit-ai
3395\tstanford\tduke!research!ucbvax!%s@stanford
";
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("unc".into());
    pa.options_mut().with_costs = true;
    pa.parse_str("map-1981", INPUT).unwrap();
    let out = pa.run().unwrap();
    assert_eq!(out.rendered, EXPECTED);
    assert!(out.warnings.is_empty());
    assert!(out.unreachable.is_empty());
}

/// E2: the symbolic cost table, exactly as printed in the paper.
#[test]
fn e2_cost_table() {
    let expected = [
        ("LOCAL", 25),
        ("DEDICATED", 95),
        ("DIRECT", 200),
        ("DEMAND", 300),
        ("HOURLY", 500),
        ("EVENING", 1800),
        ("POLLED", 5000),
        ("DAILY", 5000),
        ("WEEKLY", 30000),
    ];
    for (sym, val) in expected {
        assert_eq!(symbol_cost(sym), Some(val), "{sym}");
    }
}

/// The INPUT-section examples: `a b(10), c(20)` in all three syntax
/// spellings produces the same graph shape.
#[test]
fn input_section_syntax_equivalence() {
    let default_form = parse("a b(10), c(20)\n").unwrap();
    let explicit_form = parse("a b!(10), c!(20)\n").unwrap();
    for g in [&default_form, &explicit_form] {
        let a = g.try_node("a").unwrap();
        let costs: Vec<u64> = g.links_from(a).map(|(_, l)| l.cost).collect();
        assert_eq!(costs.iter().sum::<u64>(), 30);
    }

    // The ARPA spelling flips the operator side.
    let arpa = parse("a @b(10), @c(20)\n").unwrap();
    let a = arpa.try_node("a").unwrap();
    for (_, l) in arpa.links_from(a) {
        assert_eq!(l.op, pathalias::core::RouteOp::ARPA);
    }

    // The UNC-dwarf network shorthand equals the written-out clique.
    let shorthand = parse("UNC-dwarf = {dopey, grumpy, sleepy}(10)\n").unwrap();
    for host in ["dopey", "grumpy", "sleepy"] {
        let h = shorthand.try_node(host).unwrap();
        let (_, entry) = shorthand.links_from(h).next().unwrap();
        assert_eq!(entry.cost, 10);
    }
}

/// E11: the PROBLEMS-section figure. Left branch 425 (+ penalty), right
/// branch 500; the heuristics must prefer the right branch.
#[test]
fn e11_motown_route_decision() {
    const MOTOWN: &str = "\
princeton caip(200), topaz(300)
caip .rutgers.edu(200)
.rutgers.edu motown(25)
topaz motown(200)
";
    // With the paper's heuristics: topaz branch, cost 500.
    let g = parse(MOTOWN).unwrap();
    let princeton = g.try_node("princeton").unwrap();
    let motown = g.try_node("motown").unwrap();
    let topaz = g.try_node("topaz").unwrap();
    let tree = map(&g, princeton, &MapOptions::default()).unwrap();
    assert_eq!(tree.label(motown).unwrap().pred.unwrap().0, topaz);
    assert_eq!(tree.cost(motown), Some(500));
    let table = compute_routes(&tree);
    let r = table.entries.iter().find(|r| r.node == motown).unwrap();
    assert_eq!(r.route, "topaz!motown!%s");

    // Without heuristics: the domain branch at 425 — the route the
    // mailer at Rutgers rejects.
    let g = parse(MOTOWN).unwrap();
    let princeton = g.try_node("princeton").unwrap();
    let motown = g.try_node("motown").unwrap();
    let plain = MapOptions {
        model: CostModel::plain(),
        ..MapOptions::default()
    };
    let tree = map(&g, princeton, &plain).unwrap();
    assert_eq!(tree.cost(motown), Some(425));
    let table = compute_routes(&tree);
    let r = table.entries.iter().find(|r| r.node == motown).unwrap();
    assert_eq!(r.route, "caip!motown.rutgers.edu!%s");
}

/// E14a: the domain-tree figure — `seismo!caip.rutgers.edu!%s` with the
/// domain names appended through the traversal, subdomains hidden,
/// top-level domains shown with the gateway's route.
#[test]
fn e14_domain_tree_figure() {
    let g = parse("u seismo(100)\nseismo .edu(95)\n.edu = {.rutgers}(0)\n.rutgers = {caip}(0)\n")
        .unwrap();
    let u = g.try_node("u").unwrap();
    let tree = map(&g, u, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);

    let caip = table.find("caip.rutgers.edu").expect("synthesized name");
    assert_eq!(caip.route, "seismo!caip.rutgers.edu!%s");

    let edu = table.find(".edu").expect("top-level domain printed");
    assert_eq!(edu.route, "seismo!%s");
    assert!(edu.kind.is_visible());

    let rutgers = table
        .entries
        .iter()
        .find(|r| r.name == ".rutgers.edu")
        .expect("subdomain exists");
    assert!(!rutgers.kind.is_visible(), "subdomains are not printed");
}

/// E14b: the masquerade figure — "to augment the figure above with a
/// top-level domain .rutgers.edu with gateway caip ... the route to
/// caip and blue become caip!%s and caip!blue.rutgers.edu!%s".
#[test]
fn e14_masquerade_figure() {
    let g = parse("u caip(50)\n.rutgers.edu = {caip(0), blue(0)}\n").unwrap();
    let u = g.try_node("u").unwrap();
    let tree = map(&g, u, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);

    assert_eq!(table.find("caip").unwrap().route, "caip!%s");
    assert_eq!(
        table.find("blue.rutgers.edu").unwrap().route,
        "caip!blue.rutgers.edu!%s"
    );
    // "This makes caip a gateway for .rutgers.edu, but not for the
    // ARPANET as a whole": the domain's route is caip's.
    assert_eq!(table.find(".rutgers.edu").unwrap().route, "caip!%s");
}

/// The DATA STRUCTURES section's nosc/noscvax scenario: "the ARPANET
/// host nosc has UUCP name noscvax. A route by way of the ARPANET must
/// use the former, while a route by way of UUCP must use the latter."
/// With aliases as edges, each direction picks the right name.
#[test]
fn nosc_noscvax_alias_names() {
    // Note: arpaside's link into the net is written with `@`; network
    // exits use "the routing character and direction ... encountered
    // when entering the network".
    const WORLD: &str = "\
nosc = noscvax
ARPANET = @{nosc}(DEDICATED)
uucpside noscvax(HOURLY)
arpaside @ARPANET(DEDICATED)
";
    // Via UUCP: the predecessor knows "noscvax".
    let g = parse(WORLD).unwrap();
    let uucp = g.try_node("uucpside").unwrap();
    let tree = map(&g, uucp, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    assert_eq!(table.find("noscvax").unwrap().route, "noscvax!%s");
    // The alias gets the same route string — the wire name stays
    // noscvax.
    assert_eq!(table.find("nosc").unwrap().route, "noscvax!%s");

    // Via the ARPANET: the name on the wire is nosc.
    let g = parse(WORLD).unwrap();
    let arpa = g.try_node("arpaside").unwrap();
    let tree = map(&g, arpa, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    assert_eq!(table.find("nosc").unwrap().route, "%s@nosc");
    assert_eq!(table.find("noscvax").unwrap().route, "%s@nosc");
}

/// The HISTORY-section address form: `mail hosta!hostb!user` — routing
/// through an explicitly chosen relay.
#[test]
fn history_section_relative_address() {
    let g = parse("here hosta(100)\nhosta hostb(100)\n").unwrap();
    let here = g.try_node("here").unwrap();
    let tree = map(&g, here, &MapOptions::default()).unwrap();
    let table = compute_routes(&tree);
    let r = table.find("hostb").unwrap();
    assert_eq!(r.format("user"), "hosta!hostb!user");
}
