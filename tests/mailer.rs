//! E15: mailer integration against real pipeline output, end to end.

use pathalias::{
    generate, HeaderRewriter, MapSpec, Message, Pathalias, Policy, Rewriter, RouteDb, SyntaxStyle,
};

fn run_world() -> (Pathalias, String) {
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("princeton".into());
    pa.parse_str(
        "world",
        "\
princeton seismo(DEMAND), cbosgd(EVENING), topaz(HOURLY)
seismo .edu(DEDICATED), mcvax(DAILY), ihnp4(DEMAND)
cbosgd ihnp4(HOURLY)
.edu = {.rutgers}(0)
.rutgers = {caip}(0)
",
    )
    .unwrap();
    let rendered = pa.run().unwrap().rendered;
    (pa, rendered)
}

/// The paper's domain walkthrough produces identical routes whether the
/// exact entry exists or only the `.edu` gateway does.
#[test]
fn e15_domain_suffix_walkthrough() {
    let (_, rendered) = run_world();
    let db = RouteDb::from_output(&rendered).unwrap();
    let exact = db.route_to("caip.rutgers.edu", "pleasant").unwrap();
    assert_eq!(exact, "seismo!caip.rutgers.edu!pleasant");

    // Drop the exact line; the suffix search must produce the same.
    let without: String = rendered
        .lines()
        .filter(|l| !l.starts_with("caip.rutgers.edu"))
        .collect::<Vec<_>>()
        .join("\n");
    let db = RouteDb::from_output(&without).unwrap();
    let via_suffix = db.route_to("caip.rutgers.edu", "pleasant").unwrap();
    assert_eq!(via_suffix, exact);
}

/// First-hop vs rightmost-known on a USENET-style reply path.
#[test]
fn e15_policies_differ_as_described() {
    let (_, rendered) = run_world();
    let db = RouteDb::from_output(&rendered).unwrap();
    let reply = "cbosgd!ihnp4!seismo!mcvax!piet";

    let first = Rewriter::new(&db).policy(Policy::FirstHop);
    assert_eq!(
        first.rewrite(reply).unwrap(),
        "cbosgd!ihnp4!seismo!mcvax!piet",
        "first-hop keeps the user's path"
    );

    let rightmost = Rewriter::new(&db).policy(Policy::RightmostKnown);
    assert_eq!(
        rightmost.rewrite(reply).unwrap(),
        "seismo!mcvax!piet",
        "rightmost-known strips the circuitous prefix"
    );
}

/// The whole cbosgd example as one story: receive, rewrite headers,
/// and refuse the unsafe abbreviation.
#[test]
fn e15_cbosgd_story() {
    let (_, rendered) = run_world();
    let db = RouteDb::from_output(&rendered).unwrap();

    let msg = Message::parse(
        "From cbosgd!mark Sun Feb 9 13:14:58 EST 1986\n\
         To: princeton!honey\n\
         Cc: seismo!mcvax!piet\n\n\
         body line\n",
    )
    .unwrap();

    let hw = HeaderRewriter::new(
        Rewriter::new(&db)
            .policy(Policy::FirstHop)
            .style(SyntaxStyle::Heuristic),
    );
    let (out, errors) = hw.rewrite_message(&msg);
    assert!(errors.is_empty());
    assert_eq!(out.get("Cc"), Some("seismo!mcvax!piet"));
    assert_eq!(out.body, msg.body, "principle 2: body untouched");

    // Reply path construction at princeton: prefix the origin host.
    let reply = format!("cbosgd!{}", "mcvax!piet");
    let careful = Rewriter::new(&db);
    assert_eq!(
        careful.shorten(&reply).unwrap(),
        "cbosgd!mcvax!piet",
        "mcvax is not princeton's neighbor; the prefix must stay"
    );
    // Whereas the full path shortens safely by one hop at most.
    assert_eq!(
        careful.shorten("cbosgd!seismo!mcvax!piet").unwrap(),
        "seismo!mcvax!piet"
    );
}

/// Gateway style translation (principle 6).
#[test]
fn gateway_translates_styles() {
    let addr = pathalias::Address::parse("seismo!mcvax!piet", SyntaxStyle::Heuristic).unwrap();
    assert_eq!(addr.to_mixed(), "seismo!piet@mcvax");
    let back = pathalias::Address::parse(&addr.to_mixed(), SyntaxStyle::UucpFirst).unwrap();
    assert_eq!(back, addr, "translation round-trips");
}

/// Mailer lookup at scale: every visible route in a generated map loads
/// and expands.
#[test]
fn route_db_at_scale() {
    let map = generate(&MapSpec::small(400, 77));
    let mut pa = Pathalias::new();
    for (name, text) in &map.files {
        pa.parse_str(name, text).unwrap();
    }
    pa.options_mut().local = Some(map.home.clone());
    let out = pa.run().unwrap();
    let db = RouteDb::from_output(&out.rendered).unwrap();
    assert_eq!(db.len(), out.routes.visible().count());
    for r in out.routes.visible() {
        let expanded = db.route_to(&r.name, "user").unwrap();
        assert!(expanded.contains("user"), "{expanded}");
        assert!(!expanded.contains("%s"));
    }
}
