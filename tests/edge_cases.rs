//! Failure injection and structural edge cases, end to end.

use pathalias::core::{map, MapOptions, INF};
use pathalias::{parse, Pathalias};

/// Every statement type has a rejection path; none of them panic and
/// all report a location.
#[test]
fn parser_error_catalogue() {
    let bad_inputs = [
        "a @b!(10)\n",          // operators on both sides
        "a b(10) c(20)\n",      // missing comma
        "a b(10,)\n",           // stray comma in cost
        "a b()\n",              // empty cost
        "a b(5/0)\n",           // division by zero
        "a b(5 - 10)\n",        // negative link cost
        "a b(99999999999)\n",   // cost out of range
        "N = {a\n",             // unclosed brace
        "N = @(5)\n",           // operator without brace
        "= b\n",                // missing left-hand side
        "adjust {x}\n",         // adjust without bias
        "gateway {justanet}\n", // gateway without !
        "file {a, b}\n",        // file arity
        "a $b\n",               // illegal character
        "(5)\n",                // statement starts with punctuation
    ];
    for text in bad_inputs {
        let err = parse(text).expect_err(text);
        assert!(err.line >= 1, "{text:?} -> {err}");
        assert!(!err.msg.is_empty());
    }
}

/// Near-misses that are legal and must parse.
#[test]
fn parser_accepts_unusual_but_legal() {
    let good_inputs = [
        "dead alive(10)\n",           // keyword as host name
        "gateway relay(10)\n",        // ditto
        "a b\n",                      // costless link
        "x\n",                        // bare host
        "a b(0)\n",                   // zero cost
        "a b((((5))))\n",             // nested parens
        "a b(2 * 3 + 4 / 2 - 1)\n",   // full expression grammar
        "N = {m}(0)\n",               // zero-cost network
        "N = {a, }(5)\n",             // trailing comma tolerated, as in real maps
        "a .lone-domain(5)\n",        // link into a fresh domain
        "private {p}\nprivate {p}\n", // repeated private
        "private {}\n",               // empty command list is a no-op
        "# only a comment\n",
        "\n\n\n",
        "a\tb(5),\tc(6)\n", // tabs everywhere
    ];
    for text in good_inputs {
        parse(text).unwrap_or_else(|e| panic!("{text:?} should parse: {e}"));
    }
}

#[test]
fn alias_chains_and_cycles_are_harmless() {
    // a = b, b = c, c = a: a cycle of zero-cost edges.
    let g = parse("start a(10)\na = b\nb = c\nc = a\nc out(5)\n").unwrap();
    let start = g.try_node("start").unwrap();
    let tree = map(&g, start, &MapOptions::default()).unwrap();
    for host in ["a", "b", "c"] {
        let id = g.try_node(host).unwrap();
        assert_eq!(tree.cost(id), Some(10), "{host}");
    }
    let out = g.try_node("out").unwrap();
    assert_eq!(tree.cost(out), Some(15));
}

#[test]
fn network_of_networks() {
    // A net whose member is itself a net: exits chain for free.
    let text = "\
start OUTER(100)
OUTER = {INNER}(50)
INNER = {deep}(25)
";
    let g = parse(text).unwrap();
    let start = g.try_node("start").unwrap();
    let deep = g.try_node("deep").unwrap();
    let tree = map(&g, start, &MapOptions::default()).unwrap();
    assert_eq!(tree.cost(deep), Some(100), "both exits are free");
}

#[test]
fn dead_symbol_makes_link_last_resort() {
    let g = parse("a b(DEAD)\na c(100)\nc b(100)\n").unwrap();
    let a = g.try_node("a").unwrap();
    let b = g.try_node("b").unwrap();
    let tree = map(&g, a, &MapOptions::default()).unwrap();
    assert_eq!(tree.cost(b), Some(200), "detour beats the DEAD link");

    // With no detour, the DEAD link still delivers.
    let g = parse("a b(DEAD)\n").unwrap();
    let a = g.try_node("a").unwrap();
    let b = g.try_node("b").unwrap();
    let tree = map(&g, a, &MapOptions::default()).unwrap();
    assert_eq!(tree.cost(b), Some(INF));
}

#[test]
fn delete_then_redeclare_keeps_deletion() {
    // `delete` wins over later link declarations mentioning the host:
    // the node stays deleted (the paper's delete is administrative
    // removal, not a soft hint).
    let mut pa = Pathalias::new();
    pa.parse_str("m", "a b(10)\ndelete {b}\na b(5)\n").unwrap();
    pa.options_mut().local = Some("a".into());
    let out = pa.run().unwrap();
    assert!(out.routes.find("b").is_none());
}

#[test]
fn saturating_costs_never_overflow() {
    // Chain of DEAD links: costs stack toward saturation, not panic.
    let mut text = String::from("h0 h1(DEAD)\n");
    for i in 1..40 {
        text.push_str(&format!("h{} h{}(DEAD)\n", i, i + 1));
    }
    let g = parse(&text).unwrap();
    let h0 = g.try_node("h0").unwrap();
    let last = g.try_node("h40").unwrap();
    let tree = map(&g, h0, &MapOptions::default()).unwrap();
    let cost = tree.cost(last).unwrap();
    assert!(cost >= 40 * INF || cost == u64::MAX);
}

#[test]
fn self_contained_island_reports_unreachable() {
    let mut pa = Pathalias::new();
    pa.options_mut().no_backlinks = true;
    pa.parse_str("m", "a b(1)\nx y(1)\ny x(1)\n").unwrap();
    pa.options_mut().local = Some("a".into());
    let out = pa.run().unwrap();
    let mut unreachable = out.unreachable.clone();
    unreachable.sort();
    assert_eq!(unreachable, vec!["x", "y"]);
}

#[test]
fn backlinks_cannot_cross_deleted_hosts() {
    // leaf's only outward link goes to a deleted host: stays dark.
    let mut pa = Pathalias::new();
    pa.parse_str("m", "a b(1)\nleaf gone(5)\ndelete {gone}\n")
        .unwrap();
    pa.options_mut().local = Some("a".into());
    let out = pa.run().unwrap();
    assert!(out.unreachable.contains(&"leaf".to_string()));
}

#[test]
fn zero_cost_cycles_terminate() {
    let g = parse("a b(0)\nb c(0)\nc a(0)\nc d(0)\n").unwrap();
    let a = g.try_node("a").unwrap();
    let d = g.try_node("d").unwrap();
    let tree = map(&g, a, &MapOptions::default()).unwrap();
    assert_eq!(tree.cost(d), Some(0));
    assert_eq!(tree.stats.mapped, 4);
}

#[test]
fn duplicate_network_merge_is_stable() {
    let text = "N = {a, b}(10)\nN = {b, c}(5)\nstart N(1)\n";
    let mut pa = Pathalias::new();
    pa.parse_str("m", text).unwrap();
    pa.options_mut().local = Some("start".into());
    let out = pa.run().unwrap();
    for host in ["a", "b", "c"] {
        assert!(out.routes.find(host).is_some(), "{host} routed");
    }
    assert!(out
        .warnings
        .iter()
        .any(|w| matches!(w, pathalias::core::Warning::RedeclaredNet { .. })));
}

#[test]
fn huge_fanout_host() {
    // One hub with 5,000 leaves: exercises adjacency-list depth.
    let mut text = String::new();
    for i in 0..5_000 {
        text.push_str(&format!("hub leaf{i}(10)\n"));
    }
    let g = parse(&text).unwrap();
    let hub = g.try_node("hub").unwrap();
    let tree = map(&g, hub, &MapOptions::default()).unwrap();
    assert_eq!(tree.stats.mapped, 5_001);
}
