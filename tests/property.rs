//! Property-based tests over the whole pipeline.

use pathalias::core::{
    map_quadratic_readonly, map_readonly, unparse, CostModel, Graph, MapOptions, RouteOp,
};
use pathalias::{Address, Pathalias, SyntaxStyle};
use proptest::prelude::*;

/// A random sparse digraph as an edge list over `n` nodes, deduplicated
/// per (from, to) so the duplicate-link rule never fires.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (2usize..16).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0u64..2_000);
        (Just(n), proptest::collection::vec(edge, 0..70)).prop_map(|(n, mut edges)| {
            edges.retain(|(u, v, _)| u != v);
            let mut seen = std::collections::HashSet::new();
            edges.retain(|(u, v, _)| seen.insert((*u, *v)));
            (n, edges)
        })
    })
}

fn build_graph(n: usize, edges: &[(usize, usize, u64)]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<_> = (0..n).map(|i| g.node(&format!("n{i}"))).collect();
    for &(u, v, c) in edges {
        g.declare_link(ids[u], ids[v], c, RouteOp::UUCP);
    }
    g
}

/// Bellman–Ford oracle over the same edge list.
fn bellman_ford(n: usize, edges: &[(usize, usize, u64)], src: usize) -> Vec<Option<u64>> {
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[src] = Some(0);
    for _ in 0..n {
        let mut changed = false;
        for &(u, v, c) in edges {
            if let Some(du) = dist[u] {
                let cand = du + c;
                if dist[v].map_or(true, |dv| cand < dv) {
                    dist[v] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With all heuristics off, the mapper is plain Dijkstra and must
    /// agree with a Bellman–Ford oracle on every distance.
    #[test]
    fn dijkstra_matches_bellman_ford((n, edges) in edges_strategy()) {
        let g = build_graph(n, &edges);
        let src = g.try_node("n0").unwrap();
        let opts = MapOptions {
            model: CostModel::plain(),
            no_backlinks: true,
            ..MapOptions::default()
        };
        let tree = map_readonly(&g, src, &opts).unwrap();
        let oracle = bellman_ford(n, &edges, 0);
        for (i, expected) in oracle.iter().enumerate() {
            let id = g.try_node(&format!("n{i}")).unwrap();
            prop_assert_eq!(tree.cost(id), *expected, "node n{}", i);
        }
    }

    /// The heap variant and the quadratic variant are label-identical,
    /// heuristics and all.
    #[test]
    fn heap_and_quadratic_agree((n, edges) in edges_strategy()) {
        let g = build_graph(n, &edges);
        let src = g.try_node("n0").unwrap();
        let opts = MapOptions::default();
        let a = map_readonly(&g, src, &opts).unwrap();
        let b = map_quadratic_readonly(&g, src, &opts).unwrap();
        for id in g.node_ids() {
            prop_assert_eq!(a.label(id), b.label(id));
        }
    }

    /// Costs along any tree path are monotonically non-decreasing and
    /// hop counts increase by at most one per predecessor step.
    #[test]
    fn tree_paths_are_monotone((n, edges) in edges_strategy()) {
        let g = build_graph(n, &edges);
        let src = g.try_node("n0").unwrap();
        let tree = map_readonly(&g, src, &MapOptions::default()).unwrap();
        for id in g.node_ids() {
            if let Some(l) = tree.label(id) {
                if let Some((p, _)) = l.pred {
                    let pl = tree.label(p).expect("pred is labelled");
                    prop_assert!(pl.cost <= l.cost);
                    prop_assert!(l.hops == pl.hops || l.hops == pl.hops + 1);
                }
            }
        }
    }
}

/// Random statement soup exercising nets, aliases and operators.
fn map_text_strategy() -> impl Strategy<Value = String> {
    let link_line = (
        0usize..8,
        proptest::collection::vec((0usize..8, 1u64..999), 1..4),
    )
        .prop_map(|(from, tos)| {
            let list: Vec<String> = tos.iter().map(|(t, c)| format!("h{t}({c})")).collect();
            format!("h{from}\t{}\n", list.join(", "))
        });
    let arpa_line = (0usize..8, 0u64..500).prop_map(|(t, c)| format!("h9\t@h{t}({c})\n"));
    let net_line = proptest::collection::vec(0usize..8, 1..4).prop_map(|ms| {
        let members: Vec<String> = ms.iter().map(|m| format!("h{m}")).collect();
        format!("NETX = {{{}}}(25)\n", members.join(", "))
    });
    let alias_line = (0usize..8).prop_map(|a| format!("h{a} = h{a}-aka\n"));
    let stmt = prop_oneof![
        4 => link_line,
        1 => arpa_line,
        1 => net_line,
        1 => alias_line,
    ];
    proptest::collection::vec(stmt, 1..12).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → unparse converges after one round trip.
    #[test]
    fn unparse_fixpoint(text in map_text_strategy()) {
        let g1 = pathalias::parse(&text).unwrap();
        let t1 = unparse::unparse(&g1);
        let g2 = pathalias::parse(&t1).unwrap();
        let t2 = unparse::unparse(&g2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(g1.node_count(), g2.node_count());
    }

    /// Every visible route has exactly one %s marker, formats cleanly,
    /// and the root costs zero.
    #[test]
    fn route_invariants(text in map_text_strategy()) {
        let mut pa = Pathalias::new();
        pa.parse_str("m", &text).unwrap();
        let out = pa.run().unwrap();
        let mut saw_root = false;
        for r in out.routes.visible() {
            prop_assert_eq!(r.route.matches("%s").count(), 1, "{}", r.route);
            let formatted = r.format("user");
            prop_assert!(formatted.contains("user"));
            prop_assert!(!formatted.contains("%s"));
            if r.cost == 0 && r.route == "%s" {
                saw_root = true;
            }
        }
        prop_assert!(saw_root, "the local host always appears");
    }
}

fn hop_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,6}".prop_filter("no trailing hyphen", |s| !s.ends_with('-'))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bang-path rendering and parsing round-trip.
    #[test]
    fn address_bang_roundtrip(
        hops in proptest::collection::vec(hop_name(), 0..5),
        user in hop_name(),
    ) {
        let addr = Address { hops, user };
        let text = addr.to_bang_path();
        let parsed = Address::parse(&text, SyntaxStyle::Heuristic).unwrap();
        prop_assert_eq!(parsed, addr);
    }

    /// Mixed-form rendering parses back to the same travel order under
    /// UUCP-first precedence.
    #[test]
    fn address_mixed_roundtrip(
        hops in proptest::collection::vec(hop_name(), 1..5),
        user in hop_name(),
    ) {
        let addr = Address { hops, user };
        let text = addr.to_mixed();
        let parsed = Address::parse(&text, SyntaxStyle::UucpFirst).unwrap();
        prop_assert_eq!(parsed, addr);
    }
}

/// Generated maps keep their invariants across seeds (fixed sample of
/// seeds; full mapgen runs are too slow for per-case generation).
#[test]
fn mapgen_invariants_across_seeds() {
    for seed in [1u64, 7, 42, 1986, 0xdead] {
        let map = pathalias::generate(&pathalias::MapSpec::small(120, seed));
        let mut pa = Pathalias::new();
        for (name, text) in &map.files {
            pa.parse_str(name, text).unwrap();
        }
        pa.options_mut().local = Some(map.home.clone());
        let out = pa.run().unwrap();
        assert!(out.routes.visible().count() > 100, "seed {seed}");
        for r in out.routes.visible() {
            assert_eq!(r.route.matches("%s").count(), 1, "seed {seed}: {}", r.route);
        }
    }
}
