//! End-to-end pipeline tests spanning parser, graph, mapper and
//! printer: multi-file semantics, collisions, commands, and round
//! trips.

use pathalias::core::{dot, unparse, Options};
use pathalias::{parse_files, Pathalias, RouteDb};

/// The paper's bilbo collision: two hosts, same name, different files,
/// one private. Routes must keep them distinct.
#[test]
fn private_collision_end_to_end() {
    let files = [
        (
            "princeton-site",
            "princeton bilbo(LOCAL)\nbilbo princeton(LOCAL)\n",
        ),
        (
            // The private bilbo talks to princeton and is wiretap's
            // only connection to the world.
            "wiretap-site",
            "private {bilbo}\nbilbo wiretap(LOCAL), princeton(HOURLY)\nwiretap bilbo(LOCAL)\n",
        ),
    ];
    let mut pa = Pathalias::new();
    for (name, text) in files {
        pa.parse_str(name, text).unwrap();
    }
    pa.options_mut().local = Some("princeton".into());
    let out = pa.run().unwrap();

    // The visible bilbo is the public one, one LOCAL hop away.
    let bilbo = out.routes.find("bilbo").unwrap();
    assert_eq!(bilbo.route, "bilbo!%s");
    assert_eq!(bilbo.cost, 25);

    // The private bilbo never appears in output under its own line...
    let bilbo_count = out.routes.visible().filter(|r| r.name == "bilbo").count();
    assert_eq!(bilbo_count, 1);

    // ...but it may relay: wiretap is reached through it.
    let wiretap = out.routes.find("wiretap").unwrap();
    assert!(
        wiretap.route.contains("bilbo!wiretap"),
        "route: {}",
        wiretap.route
    );
}

#[test]
fn file_scoping_via_parse_files() {
    let g = parse_files(&[("a", "private {x}\nx one(10)\n"), ("b", "x two(10)\n")]).unwrap();
    let xs = g.iter_nodes().filter(|(id, _)| g.name(*id) == "x").count();
    assert_eq!(xs, 2, "private x and global x");
}

#[test]
fn dead_delete_adjust_shape_routes() {
    let input = "\
home relay(100), slow(100)
relay target(100)
slow target(100)
adjust {relay(500)}
";
    // With relay penalized by adjust, the slow branch wins.
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("home".into());
    pa.parse_str("m", input).unwrap();
    let out = pa.run().unwrap();
    assert_eq!(out.routes.find("target").unwrap().route, "slow!target!%s");

    // Deleting slow forces the adjusted relay.
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("home".into());
    pa.parse_str("m", &format!("{input}delete {{slow}}\n"))
        .unwrap();
    let out = pa.run().unwrap();
    assert_eq!(out.routes.find("target").unwrap().route, "relay!target!%s");
    assert!(out.routes.find("slow").is_none());

    // A dead host still gets a route but stops relaying.
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("home".into());
    pa.parse_str("m", &format!("{input}dead {{slow}}\n"))
        .unwrap();
    let out = pa.run().unwrap();
    assert!(out.routes.find("slow").is_some());
    assert_eq!(out.routes.find("target").unwrap().route, "relay!target!%s");
}

#[test]
fn ignore_case_pipeline() {
    let mut pa = Pathalias::with_options(Options {
        ignore_case: true,
        local: Some("HOME".into()),
        ..Options::default()
    });
    pa.parse_str("m", "home Relay(10)\nRELAY far(10)\n")
        .unwrap();
    let out = pa.run().unwrap();
    // One relay node; far reachable through it.
    let far = out.routes.find("far").unwrap();
    assert_eq!(far.cost, 20);
}

/// parse → unparse → parse must converge: the second and third
/// unparsings are identical.
#[test]
fn unparse_fixpoint() {
    let input = "\
unc duke(500), @phs(2000)
duke research(2500)
ARPA = @{mit-ai, ucbvax}(95)
princeton = fun
dead {duke!research}
gated {ARPA}
seismo ARPA(300)
adjust {unc(50)}
";
    let g1 = pathalias::parse(input).unwrap();
    let text1 = unparse::unparse(&g1);
    let g2 = pathalias::parse(&text1).unwrap();
    let text2 = unparse::unparse(&g2);
    assert_eq!(text1, text2, "unparse must reach a fixpoint");
    // And the graphs agree on scale.
    assert_eq!(g1.node_count(), g2.node_count());
}

#[test]
fn dot_export_contains_pipeline_graph() {
    let g = pathalias::parse("a b(10)\nN = {a}(5)\n.edu = {x}(0)\n").unwrap();
    let dot = dot::to_dot(&g);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("\"a\" -> \"b\""));
    assert!(dot.contains("shape=box"));
    assert!(dot.contains("shape=octagon"));
}

/// The route database round-trips through the rendered text.
#[test]
fn output_roundtrips_into_route_db() {
    let mut pa = Pathalias::new();
    pa.options_mut().local = Some("hub".into());
    pa.options_mut().with_costs = true;
    pa.parse_str(
        "m",
        "hub a(100), b(200)\na c(50)\nb @d(25)\n.edu = {campus}(0)\nhub .edu(95)\n",
    )
    .unwrap();
    let out = pa.run().unwrap();
    let db = RouteDb::from_output(&out.rendered).unwrap();
    assert_eq!(db.len(), out.routes.visible().count());
    for r in out.routes.visible() {
        let entry = db.get(&r.name).expect("every visible route loads");
        assert_eq!(entry.route, r.route);
        assert_eq!(entry.cost, Some(r.cost));
    }
    // Domain member resolves through the suffix entry.
    assert_eq!(
        db.route_to("campus.edu", "prof").unwrap(),
        "campus.edu!prof",
        "gateway route for .edu is the local hub's %s-slot"
    );
}

/// Larger multi-file run: a generated map split across files keeps all
/// semantics when concatenated with `file {}` markers.
#[test]
fn concatenated_equals_multifile() {
    let map = pathalias::generate(&pathalias::MapSpec::small(150, 99));

    let mut multi = Pathalias::new();
    for (name, text) in &map.files {
        multi.parse_str(name, text).unwrap();
    }
    multi.options_mut().local = Some(map.home.clone());
    let out_multi = multi.run().unwrap();

    let mut single = Pathalias::new();
    single.parse_str("all", &map.concatenated()).unwrap();
    single.options_mut().local = Some(map.home.clone());
    let out_single = single.run().unwrap();

    assert_eq!(out_multi.rendered, out_single.rendered);
}
