//! E12 in depth: the "second-best path" modified algorithm across
//! richer topologies than the paper's figure.

use pathalias::core::{map_dual, CostModel, MapOptions};
use pathalias::parse;

/// A world where several hosts sit beyond a domain, with varying
/// domain-free alternatives.
const WORLD: &str = "\
src gw(100), side(400)
gw .corp.com(50)
.corp.com = {inner}(0)
inner deep(100)
side inner(300)
side deep(350)
";

#[test]
fn alternatives_found_per_host() {
    let g = parse(WORLD).unwrap();
    let src = g.try_node("src").unwrap();
    let inner = g.try_node("inner").unwrap();
    let deep = g.try_node("deep").unwrap();

    let opts = MapOptions {
        model: CostModel::plain(),
        ..MapOptions::default()
    };
    let dual = map_dual(&g, src, &opts).unwrap();

    // Primary routes go through the domain (cheaper).
    assert_eq!(dual.primary.cost(inner), Some(150));
    assert!(dual.via_domain(inner));
    assert_eq!(dual.primary.cost(deep), Some(250));
    assert!(dual.via_domain(deep));

    // Domain-free alternatives exist for both.
    assert_eq!(dual.second_best(inner).unwrap().cost, 700);
    assert_eq!(dual.second_best(deep).unwrap().cost, 750);
    assert!(!dual.second_best(deep).unwrap().tainted);
}

#[test]
fn clean_tree_never_contains_domains() {
    let g = parse(WORLD).unwrap();
    let src = g.try_node("src").unwrap();
    let corp = g.try_node(".corp.com").unwrap();
    let dual = map_dual(&g, src, &MapOptions::default()).unwrap();
    assert!(dual.primary.is_mapped(corp), "primary sees the domain");
    assert!(!dual.clean.is_mapped(corp), "clean tree must not");
    // Every clean label is untainted by construction.
    for id in g.node_ids() {
        if let Some(l) = dual.clean.label(id) {
            assert!(!l.tainted, "clean label tainted for {}", g.name(id));
        }
    }
}

#[test]
fn heuristics_make_second_best_redundant_here() {
    // With the paper's relay penalty active, the primary tree already
    // avoids relaying beyond the domain, so hosts past it get their
    // routes via the side links and need no alternative.
    let g = parse(WORLD).unwrap();
    let src = g.try_node("src").unwrap();
    let deep = g.try_node("deep").unwrap();
    let dual = map_dual(&g, src, &MapOptions::default()).unwrap();
    // inner is still cheapest via the domain (members may be reached
    // through their own domain), but the onward hop to deep is
    // penalized, so deep prefers the clean route even in the primary.
    assert_eq!(dual.primary.cost(deep), Some(750));
    assert!(!dual.via_domain(deep));
    assert!(dual.second_best(deep).is_none());
}

#[test]
fn preferred_is_total_over_mapped_hosts() {
    let g = parse(WORLD).unwrap();
    let src = g.try_node("src").unwrap();
    let opts = MapOptions {
        model: CostModel::plain(),
        ..MapOptions::default()
    };
    let dual = map_dual(&g, src, &opts).unwrap();
    for id in g.node_ids() {
        if dual.primary.is_mapped(id) && !g.node_ref(id).is_domain() {
            assert!(
                dual.preferred(id).is_some(),
                "no preferred label for {}",
                g.name(id)
            );
        }
    }
}
